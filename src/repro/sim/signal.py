"""Wires: the atomic state elements of the two-phase simulation kernel.

A :class:`Wire` carries a value driven combinationally during the *drive*
phase of a cycle.  Wires are deliberately dumb containers; all semantics
live in components.  Two pieces of bookkeeping make the dirty-set
scheduler in :mod:`repro.sim.kernel` possible:

* **Change detection** — ``wire.value = x`` is a property assignment
  that compares against the current value and, when it differs, pushes
  the wire's *reader* components onto the owning simulator's pending
  worklist.  This replaces the kernel's former whole-simulation
  snapshot-and-compare per settle sweep.
* **Read tracing** — while the kernel runs a component's ``drive()``
  under tracing (the default for components that do not declare
  :meth:`~repro.sim.component.Component.inputs`), every ``wire.value``
  read records that component in ``wire.readers``.  Reader sets grow
  monotonically across the run, so they always over-approximate the
  wires a component's *most recent* evaluation depended on — which is
  exactly the property that makes skipping a component safe.

A wire belongs to at most one live simulator at a time: registering it
with a second :class:`~repro.sim.kernel.Simulator` repoints its dirty
sink at the new simulator's worklist.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

#: Single-element cell holding the component currently executing a
#: *traced* ``drive()``, or ``None`` outside traced drives.  A list (not
#: a bare module global) so the kernel and the property getter share one
#: mutable slot without attribute lookups on a module object per read.
_ACTIVE_READER: List[Any] = [None]


class Wire:
    """A named, typed value container driven during the combinational phase.

    Parameters
    ----------
    name:
        Hierarchical name used for tracing and VCD dumps.
    init:
        Reset value.  ``reset()`` restores it.
    width:
        Bit width hint for waveform dumps (bools are width 1).
    """

    __slots__ = (
        "name", "_value", "init", "width", "readers", "_dirty_sink",
        "update_readers", "_update_sink", "_change_log",
    )

    def __init__(self, name: str, init: Any = False, width: int = 1) -> None:
        self.name = name
        self.init = init
        self._value = init
        self.width = width
        #: Components whose ``drive()`` reads this wire (traced or declared).
        self.readers: set = set()
        #: The owning simulator's pending worklist (a set of components),
        #: or ``None`` when the wire is unregistered / exhaustively swept.
        self._dirty_sink: Optional[set] = None
        #: Components whose ``update()`` must be re-armed when this wire
        #: changes (declared via Component.update_inputs; never traced).
        self.update_readers: set = set()
        #: The owning simulator's live-updater set, or ``None`` for
        #: unregistered wires / exhaustive simulators.
        self._update_sink: Optional[set] = None
        #: The owning simulator's changed-wire set, or ``None`` when no
        #: probe asked for change tracking (see Simulator.track_changes).
        self._change_log: Optional[set] = None

    @property
    def value(self) -> Any:
        reader = _ACTIVE_READER[0]
        if reader is not None:
            self.readers.add(reader)
        return self._value

    @value.setter
    def value(self, new: Any) -> None:
        old = self._value
        # Identity first: mirrors tuple comparison semantics (and spares
        # payload dataclass __eq__ when the same object is re-driven).
        if new is not old and new != old:
            self._value = new
            sink = self._dirty_sink
            if sink is not None:
                sink.update(self.readers)
            usink = self._update_sink
            if usink is not None and self.update_readers:
                usink.update(self.update_readers)
            log = self._change_log
            if log is not None:
                log.add(self)

    def reset(self) -> None:
        self.value = self.init

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Wire({self.name!r}, value={self._value!r})"


class Channel:
    """A valid/ready-handshaked channel carrying one payload per transfer.

    The *source* drives ``valid`` and ``payload``; the *sink* drives
    ``ready``.  A transfer *fires* in a cycle where both are asserted at
    the clock edge; components observe :meth:`fired` during their
    ``update`` phase.

    AXI4 semantics encoded here:

    * the source must keep ``valid`` asserted (with stable payload) until
      the handshake completes — enforcement is the protocol checker's
      job, not the channel's;
    * ``ready`` may be asserted combinationally in response to ``valid``.
    """

    __slots__ = ("name", "valid", "ready", "payload")

    def __init__(self, name: str) -> None:
        self.name = name
        self.valid = Wire(f"{name}.valid", False)
        self.ready = Wire(f"{name}.ready", False)
        self.payload = Wire(f"{name}.payload", None, width=64)

    def wires(self) -> Iterator[Wire]:
        yield self.valid
        yield self.ready
        yield self.payload

    def drive(self, payload: Any) -> None:
        """Source-side helper: assert valid with *payload*."""
        self.valid.value = True
        self.payload.value = payload

    def idle(self) -> None:
        """Source-side helper: deassert valid."""
        self.valid.value = False
        self.payload.value = None

    def fired(self) -> bool:
        """True when a transfer completes this cycle (valid and ready).

        A clock-edge primitive: meant for ``update()`` / probes, so it
        reads the wire slots directly and does not participate in
        drive-phase read tracing.  A ``drive()`` must sample
        ``valid.value`` / ``ready.value`` individually instead.
        """
        return bool(self.valid._value and self.ready._value)

    def beat(self) -> Optional[Any]:
        """The payload transferred this cycle, or None if no transfer.

        Clock-edge primitive; see :meth:`fired`.
        """
        return self.payload._value if self.fired() else None

    def reset(self) -> None:
        self.valid.reset()
        self.ready.reset()
        self.payload.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, valid={self.valid.value}, "
            f"ready={self.ready.value})"
        )
