"""Wires: the atomic state elements of the two-phase simulation kernel.

A :class:`Wire` carries a value driven combinationally during the *drive*
phase of a cycle.  The kernel re-runs every component's ``drive`` until no
wire changes value (a fixed point), which lets ``ready`` depend on
``valid`` within the same cycle exactly like combinational RTL.  Wires are
deliberately dumb containers; all semantics live in components.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class Wire:
    """A named, typed value container driven during the combinational phase.

    Parameters
    ----------
    name:
        Hierarchical name used for tracing and VCD dumps.
    init:
        Reset value.  ``reset()`` restores it.
    width:
        Bit width hint for waveform dumps (bools are width 1).
    """

    __slots__ = ("name", "value", "init", "width")

    def __init__(self, name: str, init: Any = False, width: int = 1) -> None:
        self.name = name
        self.init = init
        self.value = init
        self.width = width

    def reset(self) -> None:
        self.value = self.init

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Wire({self.name!r}, value={self.value!r})"


class Channel:
    """A valid/ready-handshaked channel carrying one payload per transfer.

    The *source* drives ``valid`` and ``payload``; the *sink* drives
    ``ready``.  A transfer *fires* in a cycle where both are asserted at
    the clock edge; components observe :meth:`fired` during their
    ``update`` phase.

    AXI4 semantics encoded here:

    * the source must keep ``valid`` asserted (with stable payload) until
      the handshake completes — enforcement is the protocol checker's
      job, not the channel's;
    * ``ready`` may be asserted combinationally in response to ``valid``.
    """

    __slots__ = ("name", "valid", "ready", "payload")

    def __init__(self, name: str) -> None:
        self.name = name
        self.valid = Wire(f"{name}.valid", False)
        self.ready = Wire(f"{name}.ready", False)
        self.payload = Wire(f"{name}.payload", None, width=64)

    def wires(self) -> Iterator[Wire]:
        yield self.valid
        yield self.ready
        yield self.payload

    def drive(self, payload: Any) -> None:
        """Source-side helper: assert valid with *payload*."""
        self.valid.value = True
        self.payload.value = payload

    def idle(self) -> None:
        """Source-side helper: deassert valid."""
        self.valid.value = False
        self.payload.value = None

    def fired(self) -> bool:
        """True when a transfer completes this cycle (valid and ready)."""
        return bool(self.valid.value and self.ready.value)

    def beat(self) -> Optional[Any]:
        """The payload transferred this cycle, or None if no transfer."""
        return self.payload.value if self.fired() else None

    def reset(self) -> None:
        self.valid.reset()
        self.ready.reset()
        self.payload.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, valid={self.valid.value}, "
            f"ready={self.ready.value})"
        )
