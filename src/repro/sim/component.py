"""Component base class for the two-phase synchronous simulation kernel.

Every hardware block in this reproduction — managers, subordinates, the
TMU, crossbars, reset units — subclasses :class:`Component` and follows a
strict discipline:

* :meth:`drive` is the *combinational* phase.  It may read any wire and
  any of the component's registered state, and may write only the wires
  the component sources.  It must be idempotent: the kernel calls it
  repeatedly until all wires reach a fixed point.
* :meth:`update` is the *sequential* phase (the clock edge).  It may read
  the settled wires and mutate registered state, but must not write
  wires.

This mirrors how synthesizable RTL separates combinational logic from
flip-flops and is what makes the TMU's cycle-level detection latencies
directly comparable with the paper's RTL measurements.
"""

from __future__ import annotations

from typing import Iterable

from .signal import Wire


class Component:
    """Base class for synchronous hardware models."""

    def __init__(self, name: str) -> None:
        self.name = name

    def wires(self) -> Iterable[Wire]:
        """Wires sourced or observed by this component.

        The kernel uses these for fixed-point detection and tracing.
        Subclasses should yield every wire of every interface they touch;
        duplicates across components are harmless (deduplicated by
        identity).
        """
        return ()

    def drive(self) -> None:
        """Combinational phase: compute outputs from inputs + state."""

    def update(self) -> None:
        """Sequential phase: commit registered state at the clock edge."""

    def reset(self) -> None:
        """Synchronous reset: restore registered state to power-on values."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
