"""Component base class for the two-phase synchronous simulation kernel.

Every hardware block in this reproduction — managers, subordinates, the
TMU, crossbars, reset units — subclasses :class:`Component` and follows a
strict discipline:

* :meth:`drive` is the *combinational* phase.  It may read any wire and
  any of the component's registered state, and may write only the wires
  the component sources.  It must be idempotent: given unchanged inputs
  and state, re-running it must write the same values.
* :meth:`update` is the *sequential* phase (the clock edge).  It may read
  the settled wires and mutate registered state, but must not write
  wires.

This mirrors how synthesizable RTL separates combinational logic from
flip-flops and is what makes the TMU's cycle-level detection latencies
directly comparable with the paper's RTL measurements.

Scheduling contract (dirty-set kernel)
--------------------------------------

The default kernel (``Simulator(strategy="dirty")``) re-runs a
component's ``drive()`` only when it might produce different outputs:

* **Wire sensitivity.**  If :meth:`inputs` returns ``None`` (the
  default), the kernel traces every wire the drive actually reads and
  re-runs the component whenever one of those wires changes.  A
  component may instead *declare* its input wires by overriding
  :meth:`inputs`; declared components skip the (cheap) read tracing.
  Over-declaring is harmless; under-declaring silently produces stale
  outputs — when in doubt, leave :meth:`inputs` returning ``None``.
* **State sensitivity.**  By default (``demand_driven = False``) the
  kernel conservatively re-runs ``drive()`` at the start of every
  cycle's settle, because ``update()`` may have changed registered state
  that ``drive()`` reads.  A component that sets ``demand_driven =
  True`` promises to call :meth:`schedule_drive` from every code path
  that mutates *drive-visible* state: inside ``update()``, and from any
  software-facing API (``submit()``, fault switches, register writes)
  that callers may invoke between cycles.  Missing a path is a
  correctness bug; ``Simulator(strategy="verify")`` and the
  scheduler-equivalence tests exist to catch it.

Components that never override :meth:`drive` (pure update-phase models
such as the PLIC or the recovery CPU) are excluded from the settle
worklist entirely.

Quiescence contract (update phase)
----------------------------------

Symmetric to the drive contract, a component may opt out of running
``update()`` on cycles where it is provably a no-op — no in-flight
transactions, no armed counters, no pending interrupts.  A component
that sets ``demand_update = True`` promises:

* :meth:`quiescent` returns ``True`` only when the *next* ``update()``
  would change nothing — neither registered state nor future behaviour
  — given that none of its :meth:`update_inputs` wires change and no
  one calls :meth:`schedule_update` in the meantime.  The kernel checks
  it after every ``update()`` run and removes quiescent components from
  the live updater set.
* :meth:`update_inputs` declares every wire whose *change* must re-arm
  the component (the update-phase analogue of ``inputs()``; there is no
  traced fallback — updates read wire slots directly).
* every software-facing API that re-enables update work (``submit()``,
  fault switches, register writes, ``connect``-style wiring) calls
  :meth:`schedule_update`.

State that is a pure function of the global clock — private cycle
counters used for timestamps, free-running prescaler phases, windowed
statistics over idle cycles — is exempt from the no-op requirement
*provided* the component resynchronizes it from ``self._sim.cycle`` at
the start of ``update()``; skipped spans are then reconstructed exactly
on wake.  :meth:`snapshot_state` must exclude such clock-derived state,
because ``Simulator(strategy="verify")`` replays the updates of every
skipped component each cycle and raises ``SchedulerDivergenceError``
when a replay moves the snapshot (an under-declared wake path).

Timed wakes
-----------

A component whose only pending sequential work is a *countdown* — a
watchdog deadline, a timeout budget, a ready-delay crossing — may be
quiescent through the countdown **provided** it declares the cycle the
countdown falls due with :meth:`wake_at` (alias :meth:`sleep_until`)
before sleeping, and reconstructs the elapsed span from
``self._sim.cycle`` when it next updates.  ``wake_at(c)`` guarantees
the component is back in the live updater set for the step that starts
at ``sim.cycle == c`` (whose update is stamped ``c + 1``).  The armed
wake is a single value: the latest ``wake_at`` supersedes any earlier
one, waking earlier than necessary is harmless (the update simply
re-arms), and :meth:`cancel_wake` drops it.  Waking in the past raises
``ValueError``; ``wake_at(sim.cycle)`` degenerates to
:meth:`schedule_update`.  The standard conversion keeps one
``_stamp``-style field holding the stamp of the last real update and
applies ``elapsed = now - stamp`` ticks on wake — under an always-on
update phase ``elapsed`` is 1 every cycle, so one implementation serves
both modes and ``strategy="verify"`` replays remain exact.

Phase periodicity (lockstep batching)
-------------------------------------

The lockstep batch executor (:mod:`repro.sim.batch`) runs one *leader*
simulation per pack of same-config campaign runs and derives the other
lanes' results by shifting the leader's cycle stamps.  That is only
sound when every component's *autonomous* behaviour — what it does as a
function of absolute time, independent of stimulus — is periodic.  A
component declares this with the :attr:`Component.phase_period` class
attribute:

* ``phase_period = 1`` promises the component is *translation
  invariant*: given identical stimulus shifted by any number of cycles,
  it produces identically shifted behaviour.  Purely reactive blocks
  (managers, subordinates, crossbars, reset units) qualify — all their
  countdowns are relative (``wake_at(now + delta)``), never anchored to
  absolute cycle numbers.
* ``phase_period = p`` promises invariance under shifts that are
  multiples of ``p`` — the TMU declares its free-running prescaler
  step, whose phase is ``cycle % step``.
* ``phase_period = None`` (the default) makes no promise; a simulation
  containing such a component is never batched (every lane runs
  scalar).

The pack period is the least common multiple over all registered
components (:func:`repro.sim.batch.lockstep_period`).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .signal import Wire


class DriveSensitiveState:
    """Mixin for mutable blocks (fault switches, knobs) read by a drive().

    Campaign and test code flips these attributes directly between
    cycles (``subordinate.faults.deaf_aw = True``), bypassing any
    component API that could uphold the demand-driven contract.  The
    owning component assigns itself to ``_owner`` after construction;
    every subsequent attribute write then notifies the owner's
    scheduler.
    """

    def __setattr__(self, key: str, value) -> None:
        object.__setattr__(self, key, value)
        owner = getattr(self, "_owner", None)
        if owner is not None:
            owner.schedule_drive()
            owner.schedule_update()


class Component:
    """Base class for synchronous hardware models."""

    #: When True, the kernel only re-runs ``drive()`` after an input wire
    #: change or an explicit :meth:`schedule_drive` — see the scheduling
    #: contract in the module docstring.  The default (False) re-runs
    #: every cycle, which is always safe.
    demand_driven: bool = False

    #: When True, the kernel runs ``update()`` only while the component
    #: is *awake*: it leaves the live updater set when :meth:`quiescent`
    #: returns True and re-arms on an :meth:`update_inputs` wire change
    #: or an explicit :meth:`schedule_update` — see the quiescence
    #: contract in the module docstring.  The default (False) runs
    #: ``update()`` every cycle, which is always safe.
    demand_update: bool = False

    #: Period (in cycles) of this component's autonomous, absolute-time
    #: behaviour — see "Phase periodicity" in the module docstring.
    #: ``1`` declares full translation invariance (purely reactive),
    #: ``p`` invariance under shifts by multiples of ``p``, and ``None``
    #: (the default) opts the whole simulation out of lockstep batching.
    phase_period: Optional[int] = None

    def __init__(self, name: str) -> None:
        self.name = name
        # Set by Simulator.add(): the simulator's pending worklist, the
        # live updater set, the simulator itself (for clock resync), and
        # this component's deterministic evaluation rank.
        self._scheduler: Optional[set] = None
        self._update_scheduler: Optional[set] = None
        self._sim = None
        self._order: int = 0
        # The single armed timed-wake cycle, or None.  Owned jointly
        # with the simulator's wake heap (lazy-cancellation protocol).
        self._wake_cycle: Optional[int] = None

    def wires(self) -> Iterable[Wire]:
        """Wires sourced or observed by this component.

        The kernel registers these for tracing, reset, and VCD dumps.
        Subclasses should yield every wire of every interface they touch;
        duplicates across components are harmless (deduplicated by
        identity).
        """
        return ()

    def children(self) -> Iterable["Component"]:
        """Sub-components registered automatically alongside this one.

        Lets a block expose finer scheduling granularity — e.g. the
        crossbar registers one drive-only child per AXI channel so a W
        beat does not re-arbitrate the address channels.  Children are
        full components: the kernel schedules their ``drive()`` and runs
        their ``update()`` like any other.
        """
        return ()

    def inputs(self) -> Optional[Iterable[Wire]]:
        """Wires whose value changes require re-running :meth:`drive`.

        Return ``None`` (the default) to let the kernel trace actual
        reads automatically.  Return an iterable (possibly empty) to
        declare the sensitivity list explicitly and skip tracing.
        """
        return None

    def outputs(self) -> Optional[Iterable[Wire]]:
        """Wires this component may write during :meth:`drive`.

        Purely declarative: the kernel records declared writers for
        debugging (see ``Simulator.wire_writers``).  ``None`` means
        undeclared.
        """
        return None

    def update_inputs(self) -> Optional[Iterable[Wire]]:
        """Wires whose value changes must re-arm :meth:`update`.

        Only consulted for ``demand_update`` components.  Return ``None``
        (the default) when no wire change can end the component's
        quiescence — it then relies solely on :meth:`schedule_update`.
        There is no traced fallback: clock-edge code reads wire slots
        directly, so the sensitivity list must be declared.
        """
        return None

    def quiescent(self) -> bool:
        """Whether the next :meth:`update` is provably a no-op.

        Called by the kernel right after this component's ``update()``
        ran, with the cycle's settled wires still in place.  Returning
        True removes the component from the live updater set until an
        :meth:`update_inputs` wire changes or :meth:`schedule_update` is
        called.  The default (False) keeps the component always on.
        """
        return False

    def snapshot_state(self):
        """Cheap, comparable snapshot of update-mutable registered state.

        ``Simulator(strategy="verify")`` replays the update of every
        skipped component and compares this snapshot before and after;
        any difference raises ``SchedulerDivergenceError``.  Must copy
        mutable containers (tuples of deque contents, not the deques)
        and must *exclude* clock-derived state the component resyncs on
        wake (cycle stamps, prescaler phases).  ``None`` (the default)
        opts out of state diffing — scheduling side effects are still
        checked.
        """
        return None

    def schedule_drive(self) -> None:
        """Mark this component's combinational outputs as possibly stale.

        Demand-driven components call this whenever registered state read
        by :meth:`drive` may have changed.  Safe to call at any time; a
        no-op until the component is registered with a simulator.
        """
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler.add(self)

    def schedule_update(self) -> None:
        """Re-arm this component's :meth:`update` (end its quiescence).

        Demand-update components call this from every software-facing
        path that creates new sequential work (traffic submission, fault
        switches, register writes).  Safe to call at any time; a no-op
        until the component is registered with a simulator, and for
        components that did not opt into ``demand_update``.
        """
        scheduler = self._update_scheduler
        if scheduler is not None:
            scheduler.add(self)

    def wake_update(self) -> None:
        """Alias for :meth:`schedule_update` (respects overrides)."""
        self.schedule_update()

    def wake_at(self, cycle: int) -> None:
        """Arm a timed wake: re-enter the live updater set for the step
        that starts at ``sim.cycle == cycle``.

        The latest call wins (re-arming with an earlier or later cycle
        supersedes the previous wake).  ``cycle`` in the past raises
        ``ValueError``; the current cycle degenerates to
        :meth:`schedule_update`.  A no-op for unregistered components
        and for registrations whose update runs every cycle anyway
        (``exhaustive`` simulators, ``update_skipping=False``, or
        components that never opted into ``demand_update``).
        """
        sim = self._sim
        if sim is None or self._update_scheduler is None:
            return
        sim._register_wake(self, cycle)

    def sleep_until(self, cycle: int) -> None:
        """Alias for :meth:`wake_at`, reading better at sleep sites."""
        self.wake_at(cycle)

    def cancel_wake(self) -> None:
        """Drop the armed timed wake, if any (lazy heap cancellation)."""
        self._wake_cycle = None

    def drive(self) -> None:
        """Combinational phase: compute outputs from inputs + state."""

    def update(self) -> None:
        """Sequential phase: commit registered state at the clock edge."""

    def reset(self) -> None:
        """Synchronous reset: restore registered state to power-on values."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
