"""Lockstep batch execution primitives ("campaign SIMD").

The paper's campaigns are thousands of near-identical deterministic
runs that differ only in their seed — which both runners map to a pure
*stimulus time shift* (the IP harness's ``issue_delay``, the system
experiment's ``start_delay``).  After PRs 3-4 removed per-cycle and
per-idle-span cost, the dominant remaining cost is running the whole
interpreter once per lane anyway.  This module provides the kernel-side
primitives that let the batch executor
(:class:`repro.orchestrate.batch.BatchExecutor`) collapse a *pack* of
such lanes into **one** leader simulation plus O(1) derivation per
follower lane:

Soundness argument
------------------

A follower run with seed ``s_f`` is the leader run with seed ``s_l``
whose stimulus onset is delayed by ``delta = s_f - s_l``.  The derived
result (every cycle stamp shifted by ``delta``) equals the follower's
scalar result when three conditions hold, each checked at runtime:

1. **Component contract** — every registered component declares a
   :attr:`~repro.sim.component.Component.phase_period` and ``delta`` is
   a multiple of the pack period (:func:`lockstep_period`, the lcm over
   all components).  Then the *autonomous* state the follower meets at
   its onset (the TMU's free-running prescaler phase, ``cycle %
   step``) is exactly what the leader met at its onset.
2. **Inert prefix evidence** — a :class:`LeapTrace` probe on the leader
   shows that after a contiguous startup transient of ``k`` stepped
   cycles (``0 .. k-1``) the kernel *leaped* the remaining gap up to
   the onset: nothing ran, no wire moved, no update fired.  A leaped
   span is provably inert (that is the kernel's leap precondition), so
   the pre-onset world is identical for every lane — only the armed
   stimulus wake differs, and it differs by exactly ``delta``.  Lanes
   whose onset falls inside the transient (``seed <= k``) retire to the
   scalar kernel.  Kernels that cannot leap (``verify``/``exhaustive``
   strategies, ``time_leaping=False``, ``update_skipping=False``) step
   every prefix cycle, the evidence check fails, and every lane
   gracefully retires — batch output stays byte-identical, merely
   without the speedup.
3. **Horizon containment** — derived cycle stamps must stay inside the
   run's detection window.  IP runs bound detection by an *absolute*
   horizon (``run_until(..., timeout=detect_timeout)`` from cycle 0),
   so a lane whose shifted detection cycle would cross it retires;
   system runs open their window after ``start_delay`` and shift
   cleanly.

Because the leaped gap is a single leap in leader and follower alike,
even the scheduler statistics derive exactly: ``sim_leaps`` is copied
and ``sim_cycles_leaped`` grows by ``delta`` — the batch differential
tests compare campaign JSON *including* the scheduler block.

Everything here is pure bookkeeping over plain data; numpy (when
available) accelerates the lane-axis math and degrades silently to
list arithmetic when absent.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from .component import Component

try:  # pragma: no cover - exercised via either branch in CI images
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None


def lockstep_period(components: Iterable[Component]) -> Optional[int]:
    """Pack period: lcm of every component's declared ``phase_period``.

    ``None`` as soon as any component makes no periodicity promise —
    the conservative answer that retires every lane to the scalar
    kernel rather than batching over an unaudited component.
    """
    period = 1
    for component in components:
        declared = component.phase_period
        if declared is None:
            return None
        if declared <= 0:
            raise ValueError(
                f"{component!r} declared non-positive phase_period {declared}"
            )
        period = math.lcm(period, declared)
    return period


def lane_classes(
    seeds: Sequence[int], period: int
) -> Dict[int, List[int]]:
    """Group lane *seeds* into congruence classes modulo *period*.

    Two lanes can share a pack leader only when their seed difference
    is a multiple of the pack period (soundness condition 1).  Returns
    ``{residue: [seed, ...]}`` with each class ascending — the batch
    executor packs each class separately.  Uses the numpy lane axis
    when available; the list fallback is exact.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    classes: Dict[int, List[int]] = {}
    if HAVE_NUMPY and len(seeds) > 1:
        arr = _np.asarray(list(seeds), dtype=_np.int64)
        residues = arr % period
        order = _np.argsort(arr, kind="stable")
        for index in order:
            classes.setdefault(int(residues[index]), []).append(int(arr[index]))
        return classes
    for seed in sorted(seeds):
        classes.setdefault(seed % period, []).append(seed)
    return classes


def shift_cycles(
    values: Sequence[Optional[int]], delta: int
) -> List[Optional[int]]:
    """Shift a lane's cycle stamps by *delta*, preserving ``None`` holes.

    The vectorized core of result derivation: measured cycle fields
    (transaction start, injection, detection) translate rigidly with
    the stimulus onset.
    """
    if HAVE_NUMPY and len(values) > 3 and all(v is not None for v in values):
        return [
            int(v)
            for v in (_np.asarray(list(values), dtype=_np.int64) + delta)
        ]
    return [None if value is None else value + delta for value in values]


class LeapTrace:
    """Leap-aware probe collecting the inert-prefix evidence of a run.

    Records every *stepped* cycle before the stimulus *onset* (leaped
    cycles, by construction, never reach a probe) plus the run's leap
    activity.  :meth:`inert_before` is soundness condition 2: the
    stepped prefix must be the contiguous startup transient ``0 ..
    k-1`` with ``k`` strictly below the onset — i.e. the kernel
    provably fast-forwarded the rest of the gap.
    """

    leap_aware = True

    def __init__(self, onset: int) -> None:
        if onset < 0:
            raise ValueError(f"onset must be non-negative, got {onset}")
        self.onset = onset
        self.stepped: List[int] = []
        self.leaps = 0
        self.cycles_leaped = 0

    def __call__(self, sim) -> None:
        # Probes run after the cycle counter advanced; the cycle just
        # simulated is cycle - 1.  Only the pre-onset prefix matters.
        stepped = sim.cycle - 1
        if stepped < self.onset:
            self.stepped.append(stepped)

    def on_leap(self, sim, from_cycle: int, to_cycle: int) -> None:
        self.leaps += 1
        self.cycles_leaped += to_cycle - from_cycle

    @property
    def transient_cycles(self) -> int:
        """Length of the stepped startup transient (when contiguous)."""
        return len(self.stepped)

    def inert_before(self, onset: Optional[int] = None) -> bool:
        """Whether the pre-*onset* span was provably inert.

        True iff the stepped pre-onset cycles are exactly ``0 .. k-1``
        (no mid-gap wake ever fired) *and* ``k < onset`` (a leaped gap
        exists at all).  Pass a smaller *onset* to re-check the
        evidence for a lane whose stimulus starts earlier than the
        traced leader's.
        """
        if onset is None:
            onset = self.onset
        k = len(self.stepped)
        if k >= onset:
            return False
        return all(cycle == i for i, cycle in enumerate(self.stepped))
