"""Minimal VCD (Value Change Dump) writer for debugging simulations.

The writer traces a chosen set of :class:`~repro.sim.signal.Wire` objects
and emits a standards-compliant VCD file viewable in GTKWave.  Boolean
wires dump as 1-bit scalars; integer wires as binary vectors; anything
else (e.g. channel payload dataclasses) dumps presence as a 1-bit scalar
so stalls and bubbles remain visible without serialising payloads.
"""

from __future__ import annotations

from typing import IO, Dict, List, Optional

from .kernel import Simulator
from .signal import Wire

_IDENT_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Map an integer to a compact VCD identifier string."""
    if index < 0:
        raise ValueError("identifier index must be non-negative")
    chars: List[str] = []
    base = len(_IDENT_ALPHABET)
    while True:
        chars.append(_IDENT_ALPHABET[index % base])
        index //= base
        if index == 0:
            break
    return "".join(reversed(chars))


class VcdWriter:
    """Streams value changes of selected wires to a VCD file.

    Usage::

        writer = VcdWriter(open("trace.vcd", "w"), wires)
        sim.add_probe(writer.sample)
        ...
        writer.close()

    On its first sample the writer enables the kernel's per-cycle
    changed-wire tracking (:meth:`Simulator.track_changes`) and from
    then on formats only the traced wires the kernel reports as changed,
    instead of re-formatting all of them every cycle.  Wires the probed
    simulator does not own (never registered with it) are checked every
    cycle, since the kernel cannot vouch for them.  Pass
    ``use_change_list=False`` to force the exhaustive per-cycle scan —
    the reference behavior the change-list path is tested against.
    """

    def __init__(
        self,
        stream: IO[str],
        wires: List[Wire],
        timescale: str = "1ns",
        module: str = "top",
        use_change_list: bool = True,
    ) -> None:
        self._stream = stream
        self._wires = wires
        self._idents: Dict[int, str] = {
            id(w): _identifier(i) for i, w in enumerate(wires)
        }
        self._last: Dict[int, Optional[str]] = {id(w): None for w in wires}
        self._use_change_list = use_change_list
        self._changed: Optional[set] = None  # the kernel's live set
        self._always_check: List[Wire] = []  # wires the kernel can't track
        self._rank: Dict[int, int] = {id(w): i for i, w in enumerate(wires)}
        self._write_header(timescale, module)

    def _write_header(self, timescale: str, module: str) -> None:
        out = self._stream
        out.write(f"$timescale {timescale} $end\n")
        out.write(f"$scope module {module} $end\n")
        for wire in self._wires:
            ident = self._idents[id(wire)]
            width = wire.width if isinstance(wire.value, int) else 1
            safe = wire.name.replace(" ", "_")
            out.write(f"$var wire {width} {ident} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

    def _format(self, wire: Wire) -> str:
        ident = self._idents[id(wire)]
        value = wire.value
        if isinstance(value, bool):
            return f"{int(value)}{ident}"
        if isinstance(value, int):
            return f"b{value:b} {ident}"
        return f"{0 if value is None else 1}{ident}"

    def _candidates(self, sim: Simulator) -> List[Wire]:
        """Traced wires that may have changed since the last sample."""
        if not self._use_change_list:
            return self._wires
        if self._changed is None:
            # First sample: enable tracking, split off wires this
            # simulator does not own, and scan everything once so the
            # initial values are dumped.
            self._changed = sim.track_changes()
            self._always_check = [
                wire for wire in self._wires
                if wire._change_log is not self._changed
            ]
            return self._wires
        traced = self._rank
        candidates = [wire for wire in self._changed if id(wire) in traced]
        candidates.extend(self._always_check)
        # Set iteration order is arbitrary; restore declaration order so
        # identical runs emit byte-identical files.  A wire in both
        # lists formats twice; the _last comparison absorbs it.
        candidates.sort(key=lambda wire: traced[id(wire)])
        return candidates

    def sample(self, sim: Simulator) -> None:
        """Probe callback: emit changes for the just-completed cycle."""
        changes: List[str] = []
        for wire in self._candidates(sim):
            formatted = self._format(wire)
            if formatted != self._last[id(wire)]:
                self._last[id(wire)] = formatted
                changes.append(formatted)
        if changes:
            self._stream.write(f"#{sim.cycle}\n")
            for change in changes:
                self._stream.write(change + "\n")

    # Value changes are the only thing a VCD records, and no wire can
    # change across a leaped span — skipping the per-cycle samples
    # emits the identical change list, so the writer opts into time
    # leaping instead of pinning the clock.  leap_resample asks the
    # kernel to invoke the probe once at each leap destination, which
    # flushes anything not yet dumped (in practice only the initial
    # values, when a trace starts inside an idle span); mid-run leaps
    # have no pending changes and the extra call emits nothing.
    sample.leap_aware = True
    sample.leap_resample = True

    def close(self) -> None:
        self._stream.flush()
