"""Minimal VCD (Value Change Dump) writer for debugging simulations.

The writer traces a chosen set of :class:`~repro.sim.signal.Wire` objects
and emits a standards-compliant VCD file viewable in GTKWave.  Boolean
wires dump as 1-bit scalars; integer wires as binary vectors; anything
else (e.g. channel payload dataclasses) dumps presence as a 1-bit scalar
so stalls and bubbles remain visible without serialising payloads.
"""

from __future__ import annotations

from typing import IO, Dict, List, Optional

from .kernel import Simulator
from .signal import Wire

_IDENT_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Map an integer to a compact VCD identifier string."""
    if index < 0:
        raise ValueError("identifier index must be non-negative")
    chars: List[str] = []
    base = len(_IDENT_ALPHABET)
    while True:
        chars.append(_IDENT_ALPHABET[index % base])
        index //= base
        if index == 0:
            break
    return "".join(reversed(chars))


class VcdWriter:
    """Streams value changes of selected wires to a VCD file.

    Usage::

        writer = VcdWriter(open("trace.vcd", "w"), wires)
        sim.add_probe(writer.sample)
        ...
        writer.close()
    """

    def __init__(
        self,
        stream: IO[str],
        wires: List[Wire],
        timescale: str = "1ns",
        module: str = "top",
    ) -> None:
        self._stream = stream
        self._wires = wires
        self._idents: Dict[int, str] = {
            id(w): _identifier(i) for i, w in enumerate(wires)
        }
        self._last: Dict[int, Optional[str]] = {id(w): None for w in wires}
        self._write_header(timescale, module)

    def _write_header(self, timescale: str, module: str) -> None:
        out = self._stream
        out.write(f"$timescale {timescale} $end\n")
        out.write(f"$scope module {module} $end\n")
        for wire in self._wires:
            ident = self._idents[id(wire)]
            width = wire.width if isinstance(wire.value, int) else 1
            safe = wire.name.replace(" ", "_")
            out.write(f"$var wire {width} {ident} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

    def _format(self, wire: Wire) -> str:
        ident = self._idents[id(wire)]
        value = wire.value
        if isinstance(value, bool):
            return f"{int(value)}{ident}"
        if isinstance(value, int):
            return f"b{value:b} {ident}"
        return f"{0 if value is None else 1}{ident}"

    def sample(self, sim: Simulator) -> None:
        """Probe callback: emit changes for the just-completed cycle."""
        changes: List[str] = []
        for wire in self._wires:
            formatted = self._format(wire)
            if formatted != self._last[id(wire)]:
                self._last[id(wire)] = formatted
                changes.append(formatted)
        if changes:
            self._stream.write(f"#{sim.cycle}\n")
            for change in changes:
                self._stream.write(change + "\n")

    def close(self) -> None:
        self._stream.flush()
