"""Two-phase synchronous simulation kernel.

The kernel models synchronous digital hardware: every cycle, component
``drive()`` methods settle combinational wire values to a fixed point,
then ``update()`` methods advance registered state at the clock edge.
"""

from .batch import LeapTrace, lane_classes, lockstep_period, shift_cycles
from .component import Component, DriveSensitiveState
from .kernel import STRATEGIES, SchedulerDivergenceError, SettleError, Simulator
from .signal import Channel, Wire
from .vcd import VcdWriter

__all__ = [
    "Channel",
    "Component",
    "DriveSensitiveState",
    "LeapTrace",
    "STRATEGIES",
    "lane_classes",
    "lockstep_period",
    "shift_cycles",
    "SchedulerDivergenceError",
    "SettleError",
    "Simulator",
    "VcdWriter",
    "Wire",
]
