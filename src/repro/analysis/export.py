"""Structured (JSON-ready) export of measurement results.

Benches and downstream tooling serialize area reports, performance logs
and injection results to plain dictionaries for archiving or plotting
outside this repository.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..area.model import AreaReport
from ..sim.kernel import Simulator
from ..tmu.perf import PerfLog


def area_report_dict(report: AreaReport) -> Dict[str, Any]:
    """JSON-ready form of an :class:`AreaReport`."""
    return {
        "variant": report.variant.value,
        "outstanding": report.outstanding,
        "prescale_step": report.prescale_step,
        "total_um2": report.total_um2,
        "breakdown_um2": {
            key: value
            for key, value in report.breakdown().items()
            if key != "total"
        },
    }


def perf_log_dict(log: PerfLog, window_cycles: Optional[int] = None) -> Dict[str, Any]:
    """JSON-ready form of a guard's :class:`PerfLog`."""
    phases = {}
    for label, stat in log.phase_summary().items():
        phases[label] = {
            "count": stat.count,
            "mean": stat.mean,
            "min": stat.minimum,
            "max": stat.maximum,
        }
    result: Dict[str, Any] = {
        "direction": log.direction.value,
        "completed": log.completed,
        "beats": log.beats_transferred,
        "latency": {
            "mean": log.txn_latency.mean,
            "min": log.txn_latency.minimum,
            "max": log.txn_latency.maximum,
        },
        "latency_histogram": {
            f"{bounds[0]}-{bounds[1] if bounds[1] is not None else 'inf'}": count
            for bounds, count in log.latency_histogram.nonzero()
        },
        "phases": phases,
    }
    if window_cycles:
        result["throughput_beats_per_cycle"] = log.throughput(window_cycles)
    return result


def injection_result_dict(result) -> Dict[str, Any]:
    """JSON-ready form of an IP- or system-level injection result.

    Works for both :class:`~repro.faults.campaign.InjectionResult` and
    :class:`~repro.soc.experiment.SystemInjectionResult` (duck-typed on
    the shared fields).
    """
    return {
        "stage": result.stage.value,
        "variant": result.variant,
        "detected": result.detect_cycle is not None,
        "inject_cycle": result.inject_cycle,
        "detect_cycle": result.detect_cycle,
        "latency_from_injection": result.latency_from_injection,
        "latency_from_start": result.latency_from_start,
        "fault_kind": result.fault_kind,
        "fault_phase": result.fault_phase,
        "recovered": result.recovered,
    }


def system_injection_result_dict(result) -> Dict[str, Any]:
    """JSON-ready form of a :class:`SystemInjectionResult`.

    Extends :func:`injection_result_dict` with the system-level fields:
    the Fig. 11 latency convention, the first W beat, and the recovery
    bookkeeping (Ethernet resets, CPU recovery routines).
    """
    payload = injection_result_dict(result)
    payload.update(
        {
            "fig11_latency": result.fig11_latency,
            "w_first_cycle": result.w_first_cycle,
            "ethernet_resets": result.ethernet_resets,
            "cpu_recoveries": result.cpu_recoveries,
        }
    )
    return payload


def scheduler_stats_dict(results) -> Dict[str, int]:
    """Aggregate kernel fast-forward statistics over a result list.

    Sums the per-run scheduler diagnostics — one ``sim_<key>`` result
    field per :attr:`repro.sim.kernel.Simulator.STAT_KEYS` entry, the
    same authority ``Simulator.stats()`` reads — so a campaign archive
    records how much simulated idle time was leaped rather than ticked.
    Results predating the fields count as zero, and the emitted keys
    (``leaps``/``cycles_leaped``) are byte-identical to the hand-listed
    block this replaced.
    """
    return {
        key: sum(
            int(getattr(result, f"sim_{key}", 0) or 0) for result in results
        )
        for key in Simulator.STAT_KEYS
    }


def campaign_dict(results, spec=None) -> Dict[str, Any]:
    """JSON-ready form of a whole campaign's result list.

    *spec* may be a :class:`~repro.orchestrate.spec.CampaignSpec`; its
    canonical dict (and content hash) are embedded so an archived
    campaign is self-describing.  IP- and system-level results may be
    mixed; each entry is tagged per run via its shape.  The
    ``scheduler`` block aggregates the wake/leap coalescing statistics
    across runs — diagnostics about *how* the campaign simulated, kept
    out of the per-result entries so those stay kernel-invariant.
    """
    entries = [
        system_injection_result_dict(result)
        if hasattr(result, "fig11_latency")
        else injection_result_dict(result)
        for result in results
    ]
    payload: Dict[str, Any] = {
        "runs": len(entries),
        "detected": sum(1 for entry in entries if entry["detected"]),
        "recovered": sum(1 for entry in entries if entry["recovered"]),
        "scheduler": scheduler_stats_dict(results),
        "results": entries,
    }
    if spec is not None:
        payload["spec"] = spec.canonical_dict()
        payload["spec_hash"] = spec.spec_hash()
    return payload


def to_json(payload: Any, indent: int = 2) -> str:
    """Serialize an export dictionary (or list of them) to JSON text."""
    return json.dumps(payload, indent=indent, sort_keys=True)


def write_campaign_json(results, stream, spec=None, indent: int = 2) -> int:
    """Stream a campaign export, byte-identical to the in-memory path.

    Emits exactly the text ``to_json(campaign_dict(results, spec=spec))``
    produces, but one result at a time — aggregation as a streamed,
    index-ordered query instead of an in-memory list.  *results* is any
    iterable of result objects, or a zero-argument callable returning a
    fresh iterator (e.g. ``lambda: store.iter_results(spec.runs())``):
    the aggregate counts precede the entries in the sorted-key layout,
    so the writer makes two passes and never holds more than one result.
    A plain list works too (it is simply iterated twice).  Returns the
    number of results written.
    """
    def fresh():
        return iter(results() if callable(results) else results)

    pad = " " * indent

    def nested(payload: Any, depth: int) -> str:
        """json.dumps re-indented to sit at *depth* levels deep."""
        blob = json.dumps(payload, indent=indent, sort_keys=True)
        return blob.replace("\n", "\n" + pad * depth)

    runs = detected = recovered = 0
    scheduler = {key: 0 for key in Simulator.STAT_KEYS}
    for result in fresh():
        runs += 1
        if result.detect_cycle is not None:
            detected += 1
        if result.recovered:
            recovered += 1
        for key in scheduler:
            scheduler[key] += int(getattr(result, f"sim_{key}", 0) or 0)

    write = stream.write
    write("{\n")
    write(f'{pad}"detected": {detected},\n')
    write(f'{pad}"recovered": {recovered},\n')
    write(f'{pad}"results": [')
    first = True
    for result in fresh():
        entry = (
            system_injection_result_dict(result)
            if hasattr(result, "fig11_latency")
            else injection_result_dict(result)
        )
        write(("" if first else ",") + "\n" + pad * 2 + nested(entry, 2))
        first = False
    write(("\n" + pad + "]") if not first else "]")
    write(",\n")
    write(f'{pad}"runs": {runs},\n')
    write(f'{pad}"scheduler": {nested(scheduler, 1)}')
    if spec is not None:
        write(f',\n{pad}"spec": {nested(spec.canonical_dict(), 1)}')
        write(f',\n{pad}"spec_hash": {json.dumps(spec.spec_hash())}')
    write("\n}")
    return runs
