"""Detection-latency probes and summaries.

Utilities shared by the Fig. 8/9/11 benches: first-assertion watchers
for interrupt wires and summary statistics over injection results.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from ..sim.kernel import Simulator
from ..sim.signal import Wire


class IrqLatencyProbe:
    """Records the cycle each rising edge of an interrupt wire occurs.

    Rides the kernel's change tracking
    (:meth:`~repro.sim.kernel.Simulator.track_changes`): on its first
    invocation the probe subscribes to the per-cycle changed-wire set
    and thereafter inspects its wire only on cycles where the wire
    actually moved — an idle interrupt line costs nothing per cycle.
    Wires the simulator does not own (never registered) fall back to
    per-cycle sampling.
    """

    #: The probe only acts on wire *changes*, and no wire can change
    #: across a leaped span — skipping those samples observes the same
    #: edges, so the probe opts into time leaping instead of pinning
    #: the clock.
    leap_aware = True

    def __init__(self, wire: Wire) -> None:
        self.wire = wire
        self.assert_cycles: List[int] = []
        self._last = False
        self._changed: Optional[set] = None
        self._primed = False

    def __call__(self, sim: Simulator) -> None:
        wire = self.wire
        if self._changed is None:
            self._changed = sim.track_changes()
        if (
            self._primed
            and wire._change_log is self._changed
            and wire not in self._changed
        ):
            return  # unchanged since the last look: no edge possible
        self._primed = True
        value = bool(wire._value)
        if value and not self._last:
            self.assert_cycles.append(sim.cycle)
        self._last = value

    @property
    def first_assertion(self) -> Optional[int]:
        return self.assert_cycles[0] if self.assert_cycles else None


@dataclasses.dataclass
class LatencySummary:
    """Aggregate over a set of detection latencies."""

    count: int
    detected: int
    minimum: Optional[int]
    maximum: Optional[int]
    mean: Optional[float]

    @property
    def coverage(self) -> float:
        """Fraction of injections that were detected."""
        return self.detected / self.count if self.count else 0.0


def summarize_latencies(latencies: Iterable[Optional[int]]) -> LatencySummary:
    """Summarize a stream of per-injection latencies (None = undetected)."""
    values = list(latencies)
    detected = [value for value in values if value is not None]
    return LatencySummary(
        count=len(values),
        detected=len(detected),
        minimum=min(detected) if detected else None,
        maximum=max(detected) if detected else None,
        mean=sum(detected) / len(detected) if detected else None,
    )
