"""Detection-latency probes and summaries.

Utilities shared by the Fig. 8/9/11 benches: first-assertion watchers
for interrupt wires and summary statistics over injection results.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from ..sim.kernel import Simulator
from ..sim.signal import Wire


class IrqLatencyProbe:
    """Records the cycle each rising edge of an interrupt wire occurs."""

    def __init__(self, wire: Wire) -> None:
        self.wire = wire
        self.assert_cycles: List[int] = []
        self._last = False

    def __call__(self, sim: Simulator) -> None:
        value = bool(self.wire.value)
        if value and not self._last:
            self.assert_cycles.append(sim.cycle)
        self._last = value

    @property
    def first_assertion(self) -> Optional[int]:
        return self.assert_cycles[0] if self.assert_cycles else None


@dataclasses.dataclass
class LatencySummary:
    """Aggregate over a set of detection latencies."""

    count: int
    detected: int
    minimum: Optional[int]
    maximum: Optional[int]
    mean: Optional[float]

    @property
    def coverage(self) -> float:
        """Fraction of injections that were detected."""
        return self.detected / self.count if self.count else 0.0


def summarize_latencies(latencies: Iterable[Optional[int]]) -> LatencySummary:
    """Summarize a stream of per-injection latencies (None = undetected)."""
    values = list(latencies)
    detected = [value for value in values if value is not None]
    return LatencySummary(
        count=len(values),
        detected=len(detected),
        minimum=min(detected) if detected else None,
        maximum=max(detected) if detected else None,
        mean=sum(detected) / len(detected) if detected else None,
    )
