"""ASCII table/series rendering for benchmark reports.

The benches print the same rows and series the paper's tables and
figures report; these helpers keep that output aligned and diff-friendly
(``EXPERIMENTS.md`` embeds them verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a padded ASCII table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(col)) for col in columns]
    for row in materialized:
        if len(row) != len(columns):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(columns)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialized:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[tuple],
    title: Optional[str] = None,
    fmt: str = "{:.1f}",
) -> str:
    """Render (x, y1, y2, ...) series as a table — one paper figure axis.

    ``series`` is a sequence of ``(name, values)`` pairs.
    """
    columns = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for _, values in series:
            value = values[i]
            row.append(fmt.format(value) if isinstance(value, float) else value)
        rows.append(row)
    return render_table(columns, rows, title=title)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (for quick figure-shape eyeballing)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(values) if values else 1.0
    peak = peak if peak > 0 else 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)
