"""Measurement and reporting helpers for the benches."""

from .export import (
    area_report_dict,
    injection_result_dict,
    perf_log_dict,
    to_json,
)
from .latency import IrqLatencyProbe, LatencySummary, summarize_latencies
from .report import render_bar_chart, render_series, render_table

__all__ = [
    "IrqLatencyProbe",
    "area_report_dict",
    "injection_result_dict",
    "perf_log_dict",
    "to_json",
    "LatencySummary",
    "render_bar_chart",
    "render_series",
    "render_table",
    "summarize_latencies",
]
