"""Reproduction of "Towards Reliable Systems: A Scalable Approach to
AXI4 Transaction Monitoring" (DATE 2025).

Public API overview
-------------------
``repro.sim``
    Two-phase synchronous simulation kernel.
``repro.axi``
    AXI4 protocol substrate: channels, managers, subordinates, crossbar.
``repro.tmu``
    The Transaction Monitoring Unit (Tiny- and Full-Counter variants).
``repro.faults``
    Fault-injection wrappers and campaign runner.
``repro.orchestrate``
    Campaign orchestration: shard planning, process-pool execution,
    result caching, progress reporting.
``repro.area``
    GF12-calibrated structural area model.
``repro.baselines``
    Comparator monitors from the paper's Table II.
``repro.soc``
    Cheshire-like system-level integration (Fig. 10).
``repro.analysis``
    Detection-latency probes and report rendering.
"""

__version__ = "1.0.0"
