"""Fault-injection stage definitions (paper Fig. 9).

Each :class:`InjectionStage` corresponds to one of the error classes the
paper injects at IP and system level, for both directions.  A stage
knows which transaction phase it corrupts (for Full-Counter detection
attribution) and whether the fault originates at the manager or the
subordinate side of the link.
"""

from __future__ import annotations

import enum

from ..axi.types import AxiDir
from ..tmu.phases import ReadPhase, WritePhase


class FaultSite(enum.Enum):
    """Which agent misbehaves."""

    MANAGER = "manager"
    SUBORDINATE = "subordinate"


class InjectionStage(enum.Enum):
    """Where in the transaction the fault is injected.

    Write-side stages follow the paper's Fig. 9 list verbatim; read-side
    stages mirror them (the paper applies "identical" injections to the
    read channels in the system experiment).
    """

    # -- write direction -------------------------------------------------
    AW_READY_MISSING = "aw_stage_error"
    W_VALID_MISSING = "w_stage_timeout"
    W_READY_MISSING = "w_datapath_error"
    DATA_TRANSFER_STALL = "data_transfer_error"
    WLAST_TO_BVALID = "wlast_bvalid_error"
    B_ID_MISMATCH = "b_handshake_id_mismatch"
    B_READY_MISSING = "b_handshake_ready_missing"
    # -- read direction ---------------------------------------------------
    AR_READY_MISSING = "ar_stage_error"
    R_VALID_MISSING = "r_stage_timeout"
    R_MID_BURST_STALL = "r_data_transfer_error"
    R_ID_MISMATCH = "r_id_mismatch"
    R_LAST_DROPPED = "r_last_dropped"
    R_READY_MISSING = "r_handshake_ready_missing"

    @property
    def direction(self) -> AxiDir:
        return (
            AxiDir.WRITE
            if self in _WRITE_STAGES
            else AxiDir.READ
        )

    @property
    def site(self) -> FaultSite:
        return (
            FaultSite.MANAGER
            if self in _MANAGER_STAGES
            else FaultSite.SUBORDINATE
        )

    @property
    def expected_fc_phase(self):
        """The phase whose counter should detect this fault (Fc variant)."""
        return _EXPECTED_FC_PHASE[self]


_WRITE_STAGES = frozenset(
    {
        InjectionStage.AW_READY_MISSING,
        InjectionStage.W_VALID_MISSING,
        InjectionStage.W_READY_MISSING,
        InjectionStage.DATA_TRANSFER_STALL,
        InjectionStage.WLAST_TO_BVALID,
        InjectionStage.B_ID_MISMATCH,
        InjectionStage.B_READY_MISSING,
    }
)

_MANAGER_STAGES = frozenset(
    {
        InjectionStage.W_VALID_MISSING,
        InjectionStage.B_READY_MISSING,
        InjectionStage.R_READY_MISSING,
    }
)

_EXPECTED_FC_PHASE = {
    InjectionStage.AW_READY_MISSING: WritePhase.AW_HANDSHAKE,
    InjectionStage.W_VALID_MISSING: WritePhase.W_ENTRY,
    InjectionStage.W_READY_MISSING: WritePhase.W_FIRST_HS,
    InjectionStage.DATA_TRANSFER_STALL: WritePhase.W_DATA,
    InjectionStage.WLAST_TO_BVALID: WritePhase.B_WAIT,
    InjectionStage.B_ID_MISMATCH: WritePhase.B_WAIT,
    InjectionStage.B_READY_MISSING: WritePhase.B_HANDSHAKE,
    InjectionStage.AR_READY_MISSING: ReadPhase.AR_HANDSHAKE,
    InjectionStage.R_VALID_MISSING: ReadPhase.R_ENTRY,
    InjectionStage.R_MID_BURST_STALL: ReadPhase.R_DATA,
    InjectionStage.R_ID_MISMATCH: ReadPhase.R_DATA,
    InjectionStage.R_LAST_DROPPED: ReadPhase.R_DATA,
    InjectionStage.R_READY_MISSING: ReadPhase.R_FIRST_HS,
}

#: The six write stages of the paper's Fig. 9, in figure order.
FIG9_WRITE_STAGES = (
    InjectionStage.AW_READY_MISSING,
    InjectionStage.W_VALID_MISSING,
    InjectionStage.W_READY_MISSING,
    InjectionStage.DATA_TRANSFER_STALL,
    InjectionStage.WLAST_TO_BVALID,
    InjectionStage.B_READY_MISSING,
)
