"""Fault-injection campaigns (paper §III-A3 and Fig. 9).

:class:`IpHarness` wires the canonical IP-level test bench — traffic
manager ↔ TMU ↔ subordinate, plus the external reset unit — and the
campaign runner injects one :class:`~repro.faults.types.InjectionStage`
per run, timestamps the fault's first manifestation on the interface,
and measures when the TMU raises its interrupt.

Two latencies are reported per injection, because the paper quotes both
conventions in Fig. 11: ``latency_from_injection`` (phase-budget-shaped
for the Full-Counter) and ``latency_from_start`` (whole-budget-shaped
for the Tiny-Counter).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, List, Optional

from ..axi.interface import AxiInterface
from ..axi.manager import Manager
from ..axi.subordinate import Subordinate
from ..axi.traffic import read_spec, write_spec
from ..axi.types import AxiDir, bytes_per_beat
from ..sim.kernel import Simulator
from ..soc.reset_unit import ResetUnit
from ..tmu.config import TmuConfig
from ..tmu.unit import TransactionMonitoringUnit
from .types import FaultSite, InjectionStage


class IpHarness:
    """Manager ↔ TMU ↔ subordinate closed loop with a reset unit."""

    def __init__(
        self,
        config: TmuConfig,
        b_latency: int = 1,
        r_latency: int = 1,
        reset_duration: int = 4,
        with_reset_unit: bool = True,
        sim_strategy: str = "dirty",
        sim_update_skipping: bool = True,
        sim_time_leaping: bool = True,
        sim_tracer=None,
        reorder_depth: int = 0,
    ) -> None:
        self.sim = Simulator(
            strategy=sim_strategy,
            update_skipping=sim_update_skipping,
            time_leaping=sim_time_leaping,
            tracer=sim_tracer,
        )
        self.host = AxiInterface("host")
        self.device = AxiInterface("device")
        self.manager = Manager("manager", self.host)
        self.tmu = TransactionMonitoringUnit(
            "tmu",
            self.host,
            self.device,
            config,
            standalone_ack_after=None if with_reset_unit else reset_duration,
        )
        self.subordinate = Subordinate(
            "subordinate",
            self.device,
            b_latency=b_latency,
            r_latency=r_latency,
            reorder_depth=reorder_depth,
        )
        self.sim.add(self.manager)
        self.sim.add(self.tmu)
        self.sim.add(self.subordinate)
        self.reset_unit: Optional[ResetUnit] = None
        if with_reset_unit:
            self.reset_unit = ResetUnit(
                "reset_unit",
                self.tmu.reset_req,
                self.tmu.reset_ack,
                self.subordinate,
                reset_duration=reset_duration,
            )
            self.sim.add(self.reset_unit)
        # Interface-event counters used by stage triggers.
        self.w_beats_fired = 0
        self.r_beats_fired = 0
        self.aw_fired_cycle: Optional[int] = None
        self.ar_fired_cycle: Optional[int] = None
        self.wlast_cycle: Optional[int] = None
        self._observed_cycle = -1

    def _observe(self) -> None:
        """Record this cycle's device-side fire events (idempotent).

        The counters move only on fired handshakes, which always happen
        in stepped (never leaped) cycles, so observing after each real
        step sees every event; the cycle guard makes double observation
        (e.g. a pre-leap condition check) harmless.
        """
        if self.sim.cycle == self._observed_cycle:
            return
        self._observed_cycle = self.sim.cycle
        if self.device.w.fired():
            self.w_beats_fired += 1
            beat = self.device.w.payload.value
            if beat is not None and beat.last:
                self.wlast_cycle = self.sim.cycle
        if self.device.r.fired():
            self.r_beats_fired += 1
        if self.device.aw.fired() and self.aw_fired_cycle is None:
            self.aw_fired_cycle = self.sim.cycle
        if self.device.ar.fired() and self.ar_fired_cycle is None:
            self.ar_fired_cycle = self.sim.cycle

    def step(self) -> None:
        self.sim.step()
        self._observe()

    def run_until(self, condition, timeout: int) -> Optional[int]:
        """Leap-compatible loop: observe, then evaluate *condition*."""
        return self.sim.run_until(
            lambda _sim: (self._observe(), condition(self))[1],
            timeout=timeout,
        )

    @property
    def cycle(self) -> int:
        return self.sim.cycle


@dataclasses.dataclass
class InjectionResult:
    """Outcome of one fault injection.

    ``sim_leaps`` / ``sim_cycles_leaped`` record how much idle time the
    kernel fast-forwarded during the run (see PR 4's timed-wake queue).
    They are scheduler diagnostics, not measurements: ``compare=False``
    keeps result equality — and thus every leap-on ≡ leap-off
    differential — about what was *measured*, never about how fast the
    kernel got there.
    """

    stage: InjectionStage
    variant: str
    txn_start_cycle: int
    inject_cycle: Optional[int]
    detect_cycle: Optional[int]
    fault_kind: Optional[str]
    fault_phase: Optional[str]
    recovered: bool
    resets_taken: int
    sim_leaps: int = dataclasses.field(default=0, compare=False)
    sim_cycles_leaped: int = dataclasses.field(default=0, compare=False)

    def shifted(self, delta: int) -> "InjectionResult":
        """This result translated *delta* cycles later in time.

        The lockstep batch executor derives a follower lane's result
        from its pack leader's: every measured cycle stamp moves
        rigidly with the stimulus onset, latencies/flags/log counts are
        shift-invariant, and the leader's single pre-onset leap simply
        grows by *delta* (so even the scheduler diagnostics are exact).
        """
        from ..sim.batch import shift_cycles

        txn_start, inject, detect = shift_cycles(
            (self.txn_start_cycle, self.inject_cycle, self.detect_cycle),
            delta,
        )
        return dataclasses.replace(
            self,
            txn_start_cycle=txn_start,
            inject_cycle=inject,
            detect_cycle=detect,
            sim_cycles_leaped=self.sim_cycles_leaped + delta,
        )

    @property
    def detected(self) -> bool:
        return self.detect_cycle is not None

    @property
    def latency_from_injection(self) -> Optional[int]:
        if self.detect_cycle is None or self.inject_cycle is None:
            return None
        return self.detect_cycle - self.inject_cycle

    @property
    def latency_from_start(self) -> Optional[int]:
        if self.detect_cycle is None:
            return None
        return self.detect_cycle - self.txn_start_cycle


def apply_stage_fault(sub_faults, mgr_faults, corrupt_id: int, stage: InjectionStage) -> None:
    """Arm the fault switches that realize *stage* on a manager/subordinate pair."""
    if stage == InjectionStage.AW_READY_MISSING:
        sub_faults.deaf_aw = True
    elif stage == InjectionStage.W_VALID_MISSING:
        mgr_faults.freeze_w = True
    elif stage in (InjectionStage.W_READY_MISSING, InjectionStage.DATA_TRANSFER_STALL):
        sub_faults.deaf_w = True
    elif stage == InjectionStage.WLAST_TO_BVALID:
        sub_faults.mute_b = True
    elif stage == InjectionStage.B_ID_MISMATCH:
        sub_faults.corrupt_b_id = corrupt_id
    elif stage == InjectionStage.B_READY_MISSING:
        mgr_faults.deaf_b = True
    elif stage == InjectionStage.AR_READY_MISSING:
        sub_faults.deaf_ar = True
    elif stage in (InjectionStage.R_VALID_MISSING, InjectionStage.R_MID_BURST_STALL):
        sub_faults.mute_r = True
    elif stage == InjectionStage.R_ID_MISMATCH:
        sub_faults.corrupt_r_id = corrupt_id
    elif stage == InjectionStage.R_LAST_DROPPED:
        sub_faults.drop_r_last = True
    elif stage == InjectionStage.R_READY_MISSING:
        mgr_faults.deaf_r = True
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unhandled stage {stage}")


def _apply_fault(harness: IpHarness, stage: InjectionStage) -> None:
    apply_stage_fault(
        harness.subordinate.faults,
        harness.manager.faults,
        harness.tmu.config.max_uniq_ids + 1,
        stage,
    )


def _injection_deferred(stage: InjectionStage, beats: int) -> Optional[Callable]:
    """Trigger predicate for stages applied mid-transaction, else None.

    Single-beat bursts have no "middle": the mid-burst stages degenerate
    to their apply-at-start counterparts.
    """
    if beats < 2:
        return None
    if stage == InjectionStage.DATA_TRANSFER_STALL:
        threshold = beats // 2
        return lambda harness: harness.w_beats_fired >= threshold
    if stage == InjectionStage.R_MID_BURST_STALL:
        threshold = beats // 2
        return lambda harness: harness.r_beats_fired >= threshold
    return None


def _manifest_predicate(stage: InjectionStage) -> Callable[[IpHarness], bool]:
    """When the injected fault first becomes observable on the interface."""
    device = lambda harness: harness.device  # noqa: E731 - local alias
    table = {
        InjectionStage.AW_READY_MISSING: lambda h: bool(h.device.aw.valid.value),
        InjectionStage.W_VALID_MISSING: lambda h: h.aw_fired_cycle is not None,
        InjectionStage.W_READY_MISSING: lambda h: bool(h.device.w.valid.value),
        InjectionStage.DATA_TRANSFER_STALL: lambda h: bool(
            h.subordinate.faults.deaf_w
        ),
        InjectionStage.WLAST_TO_BVALID: lambda h: h.wlast_cycle is not None,
        InjectionStage.B_ID_MISMATCH: lambda h: bool(h.device.b.valid.value),
        InjectionStage.B_READY_MISSING: lambda h: bool(h.device.b.valid.value),
        InjectionStage.AR_READY_MISSING: lambda h: bool(h.device.ar.valid.value),
        InjectionStage.R_VALID_MISSING: lambda h: h.ar_fired_cycle is not None,
        InjectionStage.R_MID_BURST_STALL: lambda h: bool(
            h.subordinate.faults.mute_r
        ),
        InjectionStage.R_ID_MISMATCH: lambda h: bool(h.device.r.valid.value),
        InjectionStage.R_LAST_DROPPED: lambda h: h.r_beats_fired > 0,
        InjectionStage.R_READY_MISSING: lambda h: bool(h.device.r.valid.value),
    }
    del device
    return table[stage]


def run_injection(
    config: TmuConfig,
    stage: InjectionStage,
    beats: int = 8,
    detect_timeout: int = 10_000,
    recovery_timeout: int = 2_000,
    harness_kwargs: Optional[dict] = None,
    issue_delay: int = 0,
    trace=None,
    size: int = 3,
    outstanding: int = 1,
    reorder_depth: int = 0,
) -> InjectionResult:
    """Inject one fault and measure detection and recovery.

    The default workload is a single transaction of *beats* beats in
    the stage's direction, issued after *issue_delay* idle cycles —
    campaign seeds map to this delay, sweeping the injection across
    prescaler phase offsets exactly like the Fig. 8 stall measurement.
    The dark-corner axes reshape it: *size* sweeps the beat width
    (narrow transfers when below the bus width), *outstanding* stacks
    that many concurrent transactions over the config's ID space (only
    the first carries the issue delay, so the stimulus onset — and the
    batch executor's onset law — is unchanged), and *reorder_depth*
    opens the subordinate's response reorder window.  After detection,
    manager-side faults are cleared (the software recovery routine the
    paper's interrupt triggers) and the run continues until the manager
    has drained, the subordinate has been reset, and the TMU is
    monitoring again.

    *trace* registers a probe (typically a
    :class:`~repro.sim.batch.LeapTrace`) on the harness simulator
    before anything runs — the batch executor's pack leaders collect
    their inert-prefix evidence through it.
    """
    kwargs = dict(harness_kwargs or {})
    if reorder_depth and "reorder_depth" not in kwargs:
        kwargs["reorder_depth"] = reorder_depth
    harness = IpHarness(config, **kwargs)
    if trace is not None:
        harness.sim.add_probe(trace)
    spec_fn = write_spec if stage.direction == AxiDir.WRITE else read_spec
    # Each transaction gets its own 4 KiB-aligned page span so INCR
    # bursts stay AXI-legal at every (beats, size) grid point.
    stride = 0x1000 * ((beats * bytes_per_beat(size) + 0xFFF) // 0x1000)
    for i in range(max(1, outstanding)):
        harness.manager.submit(
            spec_fn(
                i % max(1, config.max_uniq_ids),
                0x1000 + i * stride,
                beats=beats,
                size=size,
                issue_delay=issue_delay if i == 0 else 0,
            )
        )

    deferred = _injection_deferred(stage, beats)
    if deferred is None:
        _apply_fault(harness, stage)
    manifest = _manifest_predicate(stage)

    txn_start: Optional[int] = None
    inject_cycle: Optional[int] = None

    def detect_tick(h: IpHarness) -> bool:
        nonlocal txn_start, inject_cycle, deferred
        if txn_start is None and (
            h.host.aw.valid.value or h.host.ar.valid.value
        ):
            txn_start = h.cycle
        if deferred is not None and inject_cycle is None and deferred(h):
            _apply_fault(h, stage)
            deferred = None
            inject_cycle = h.cycle
        if inject_cycle is None and manifest(h):
            inject_cycle = h.cycle
        return bool(h.tmu.irq.value)

    detect_cycle = harness.run_until(detect_tick, timeout=detect_timeout)

    fault = harness.tmu.last_fault
    recovered = False
    if detect_cycle is not None:
        harness.manager.faults.clear()  # software recovery routine
        harness.tmu.clear_irq()
        recovered = (
            harness.run_until(
                lambda h: (
                    h.manager.idle
                    and h.tmu.state.value == "monitor"
                    and not h.tmu.irq.value
                ),
                timeout=recovery_timeout,
            )
            is not None
        )

    return InjectionResult(
        stage=stage,
        variant=config.variant.value,
        txn_start_cycle=txn_start if txn_start is not None else 0,
        inject_cycle=inject_cycle,
        detect_cycle=detect_cycle,
        fault_kind=fault.kind.value if fault else None,
        fault_phase=fault.phase_label if fault else None,
        recovered=recovered,
        resets_taken=harness.subordinate.resets_taken,
        **{
            f"sim_{key}": value
            for key, value in harness.sim.stats().items()
            if key in Simulator.STAT_KEYS
        },
    )


def run_campaign(
    configs: Iterable[TmuConfig],
    stages: Iterable[InjectionStage],
    beats: int = 8,
    seeds: Iterable[int] = (0,),
    detect_timeout: int = 10_000,
    recovery_timeout: int = 2_000,
    harness_kwargs: Optional[dict] = None,
    workers: Optional[int] = None,
    shard_size: int = 1,
    cache_dir=None,
    progress=None,
    executor=None,
    batch_lanes: Optional[int] = None,
    batch_verify: bool = False,
    metrics=None,
    store=None,
    size: int = 3,
    outstanding: int = 1,
    reorder_depth: int = 0,
) -> List[InjectionResult]:
    """Cross-product campaign over configurations, stages and seeds.

    Runs through the orchestration engine (:mod:`repro.orchestrate`):
    *workers* > 1 shards the sweep across a process pool (*executor*
    overrides the choice entirely, e.g. with a
    :class:`~repro.orchestrate.distributed.DistributedExecutor`),
    *batch_lanes* routes same-config seed sweeps through the lockstep
    batch executor (:class:`~repro.orchestrate.batch.BatchExecutor`;
    *batch_verify* replays every derived lane on the scalar verify
    kernel),
    *cache_dir* persists completed shards so re-runs skip them, *store*
    (a :class:`~repro.orchestrate.store.ResultStore` or a path) adds
    run-granular reuse across overlapping sweeps, and
    *progress* enables the live status line.  Result ordering is
    canonical (config-major, then stage, then seed) regardless of
    executor, so the parallel path is a drop-in replacement for the
    historical serial loop.

    Configs whose budget policy the spec serializer does not understand
    (a custom :class:`AdaptiveBudgetPolicy` subclass) fall back to the
    in-process serial loop — parallelism and caching both need the
    canonical spec.
    """
    # Imported here: the orchestrator's executor imports run_injection
    # from this module, so a top-level import would cycle.
    from ..orchestrate import CampaignSpec, SpecSerializationError, run_campaign_spec

    configs = list(configs)
    stages = list(stages)
    seeds = list(seeds)
    try:
        spec = CampaignSpec.ip(
            configs,
            stages,
            beats=beats,
            seeds=seeds,
            detect_timeout=detect_timeout,
            recovery_timeout=recovery_timeout,
            harness_kwargs=harness_kwargs,
            size=size,
            outstanding=outstanding,
            reorder_depth=reorder_depth,
        )
    except SpecSerializationError:
        if (
            (workers or 1) > 1
            or cache_dir is not None
            or executor is not None
            or batch_lanes is not None
            or store is not None
        ):
            raise
        from ..orchestrate import ProgressReporter

        reporter = None
        if isinstance(progress, ProgressReporter):
            reporter = progress
        elif progress:
            reporter = ProgressReporter(
                len(configs) * len(stages) * len(seeds),
                stream=None if progress is True else progress,
            )
        results = []
        for config in configs:
            for stage in stages:
                for seed in seeds:
                    results.append(
                        run_injection(
                            config,
                            stage,
                            beats=beats,
                            detect_timeout=detect_timeout,
                            recovery_timeout=recovery_timeout,
                            harness_kwargs=harness_kwargs,
                            issue_delay=seed,
                            size=size,
                            outstanding=outstanding,
                            reorder_depth=reorder_depth,
                        )
                    )
                    if metrics is not None:
                        metrics.counter("campaign.runs").inc()
                        metrics.counter("campaign.runs_executed").inc()
                    if reporter:
                        reporter.shard_done(1)
        if reporter:
            reporter.finish()
        return results
    return run_campaign_spec(
        spec,
        workers=workers,
        shard_size=shard_size,
        cache_dir=cache_dir,
        progress=progress,
        executor=executor,
        batch_lanes=batch_lanes,
        batch_verify=batch_verify,
        metrics=metrics,
        store=store,
    )


def measure_stall_detection_latency(
    config: TmuConfig,
    offsets: Optional[Iterable[int]] = None,
    timeout: int = 100_000,
) -> int:
    """Worst-case detection latency for a total-stall fault (Fig. 8).

    Models the paper's measurement scenario: "the datapath never asserts
    a valid signal, effectively modelling a total stall".  The stall
    onset is swept across prescaler phase *offsets* and the worst
    detection latency (cycles from ``aw_valid`` assertion to the TMU
    interrupt) is returned.
    """
    if offsets is None:
        offsets = range(min(config.prescale_step, 8))
    worst = 0
    for offset in offsets:
        harness = IpHarness(config)
        harness.subordinate.faults.deaf_aw = True
        harness.manager.submit(write_spec(0, 0x1000, issue_delay=offset))
        start: Optional[int] = None

        def stall_tick(h: IpHarness) -> bool:
            nonlocal start
            if start is None and h.host.aw.valid.value:
                start = h.cycle
            return bool(h.tmu.irq.value)

        detected = harness.run_until(stall_tick, timeout=timeout)
        if detected is None:
            raise RuntimeError(
                f"stall not detected within {timeout} cycles at offset {offset}"
            )
        assert start is not None
        worst = max(worst, detected - start)
    return worst
