"""Signal-level fault injector: a forcing passthrough between interfaces.

:class:`FaultInjector` sits on an AXI link and forwards all five
channels transparently until a force is applied.  Forces override
individual handshake signals (``valid``/``ready``) or rewrite payloads,
modelling pin-level fault injection exactly as the paper's testbench
does.  Because it is an ordinary component, it can be placed on either
side of the TMU: upstream to model manager faults, downstream to model
subordinate faults.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional

from ..axi.interface import AxiInterface
from ..sim.component import Component

PayloadMutator = Callable[[Any], Any]


@dataclasses.dataclass
class ChannelForce:
    """Active overrides on one channel.

    ``None`` means "pass through unchanged".
    """

    valid: Optional[bool] = None
    ready: Optional[bool] = None
    mutate: Optional[PayloadMutator] = None

    def clear(self) -> None:
        self.valid = None
        self.ready = None
        self.mutate = None

    @property
    def any_active(self) -> bool:
        return (
            self.valid is not None
            or self.ready is not None
            or self.mutate is not None
        )


class FaultInjector(Component):
    """Transparent AXI passthrough with per-channel signal forcing.

    Parameters
    ----------
    upstream:
        Interface toward the manager/TMU side.
    downstream:
        Interface toward the subordinate side.
    """

    CHANNELS = ("aw", "w", "b", "ar", "r")
    _REQUEST_CHANNELS = ("aw", "w", "ar")

    demand_driven = True
    demand_update = True

    def __init__(
        self, name: str, upstream: AxiInterface, downstream: AxiInterface
    ) -> None:
        super().__init__(name)
        self.upstream = upstream
        self.downstream = downstream
        self.forces: Dict[str, ChannelForce] = {
            channel: ChannelForce() for channel in self.CHANNELS
        }
        # forced_cycles is accounted lazily against the clock: while a
        # force is applied the count is `_forced_base + (now - since)`,
        # so a forced-but-frozen interface needs no per-cycle update
        # (its idle span can be leaped).  force()/release() move the
        # base at the transitions.
        self._forced_base = 0
        self._forced_since: Optional[int] = None

    # ------------------------------------------------------------------
    # Force API
    # ------------------------------------------------------------------
    def force(
        self,
        channel: str,
        valid: Optional[bool] = None,
        ready: Optional[bool] = None,
        mutate: Optional[PayloadMutator] = None,
    ) -> None:
        """Apply overrides to *channel* (one of aw/w/b/ar/r)."""
        if channel not in self.forces:
            raise KeyError(f"unknown channel {channel!r}")
        entry = self.forces[channel]
        was_active = self.any_force_active
        entry.valid = valid
        entry.ready = ready
        entry.mutate = mutate
        if not was_active and self.any_force_active:
            self._forced_since = self._now()
        elif was_active and not self.any_force_active:
            self._forced_base = self._forced_base + max(
                0, self._now() - (self._forced_since or 0)
            )
            self._forced_since = None
        self.schedule_drive()
        self.schedule_update()

    def release(self, channel: Optional[str] = None) -> None:
        """Remove overrides from *channel*, or from all channels."""
        was_active = self.any_force_active
        if channel is None:
            for entry in self.forces.values():
                entry.clear()
        else:
            self.forces[channel].clear()
        if was_active and not self.any_force_active:
            self._forced_base = self._forced_base + max(
                0, self._now() - (self._forced_since or 0)
            )
            self._forced_since = None
        self.schedule_drive()
        self.schedule_update()

    def _now(self) -> int:
        return self._sim.cycle if self._sim is not None else 0

    @property
    def forced_cycles(self) -> int:
        """Cycles a force has been applied, accounted lazily."""
        if self._forced_since is None:
            return self._forced_base
        return self._forced_base + max(0, self._now() - self._forced_since)

    @property
    def any_force_active(self) -> bool:
        return any(entry.any_active for entry in self.forces.values())

    # ------------------------------------------------------------------
    # Component protocol
    # ------------------------------------------------------------------
    def wires(self):
        yield from self.upstream.wires()
        yield from self.downstream.wires()

    def _endpoints(self, channel: str):
        """(source, destination) channel pair honoring AXI direction."""
        src_if, dst_if = (
            (self.upstream, self.downstream)
            if channel in self._REQUEST_CHANNELS
            else (self.downstream, self.upstream)
        )
        return getattr(src_if, channel), getattr(dst_if, channel)

    def inputs(self):
        for channel in self.CHANNELS:
            src, dst = self._endpoints(channel)
            yield from (src.valid, src.payload, dst.ready)

    def outputs(self):
        for channel in self.CHANNELS:
            src, dst = self._endpoints(channel)
            yield from (dst.valid, dst.payload, src.ready)

    def drive(self) -> None:
        for channel in self.CHANNELS:
            src, dst = self._endpoints(channel)
            force = self.forces[channel]
            valid = src.valid.value if force.valid is None else force.valid
            payload = src.payload.value
            if force.mutate is not None and payload is not None:
                payload = force.mutate(payload)
            dst.valid.value = bool(valid)
            dst.payload.value = payload if valid else None
            ready = dst.ready.value if force.ready is None else force.ready
            src.ready.value = bool(ready)

    def update(self) -> None:
        # forced_cycles is derived lazily from the clock; nothing
        # remains for the sequential phase to do.
        pass

    def quiescent(self):
        # Pure passthrough state machine: force()/release() are the
        # only transitions, and both wake us explicitly.
        return True

    def snapshot_state(self):
        # The lazy count is a pure function of the clock between
        # transitions; verify watches only the transition bookkeeping.
        return (self._forced_base, self._forced_since is not None)

    def reset(self) -> None:
        self.release()  # schedules re-evaluation of both phases
        self._forced_base = 0
        self._forced_since = None
