"""Fault injection: stages, signal forcing, campaign runner."""

from .campaign import (
    InjectionResult,
    IpHarness,
    apply_stage_fault,
    measure_stall_detection_latency,
    run_campaign,
    run_injection,
)
from .injector import ChannelForce, FaultInjector
from .types import FIG9_WRITE_STAGES, FaultSite, InjectionStage

__all__ = [
    "ChannelForce",
    "FIG9_WRITE_STAGES",
    "FaultInjector",
    "FaultSite",
    "InjectionResult",
    "InjectionStage",
    "IpHarness",
    "apply_stage_fault",
    "measure_stall_detection_latency",
    "run_campaign",
    "run_injection",
]
