"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro area --variant tiny --outstanding 32 --step 32
    python -m repro inject --variant full --stage wlast_bvalid_error
    python -m repro fig7
    python -m repro fig8 --variant tiny
    python -m repro fig11 --workers 4
    python -m repro table2
    python -m repro campaign --kind ip --workers 4 --seeds 2 --progress

Lockstep batch execution (one scalar leader per pack of same-config
seed lanes; byte-identical results)::

    python -m repro fig11 --seeds 64 --batch-lanes 64
    python -m repro campaign --kind ip --seeds 64 --batch-lanes 64 \
        --batch-verify --progress

Distributed campaigns (coordinator + any number of pull workers)::

    python -m repro serve --port 7453 --workers 2 --kind system \
        --cache-dir /shared/cache --json campaign.json
    python -m repro worker --connect 10.0.0.5:7453        # on any machine
    python -m repro campaign --distributed --local-workers 2 --kind ip
    python -m repro fig11 --distributed --local-workers 2
    python -m repro campaign --resume --cache-dir /shared/cache ...

Run-granular result store (incremental reuse across overlapping
sweeps: a superset campaign simulates only its frontier)::

    python -m repro campaign --kind system --seeds 4 --store /shared/store
    python -m repro campaign --kind system --seeds 8 --store /shared/store
    python -m repro worker --connect 10.0.0.5:7453 --store /shared/store
    python -m repro store stats /shared/store --cold /shared/cache
    python -m repro store migrate /shared/cache --store /shared/store

Telemetry (all opt-in; never changes a result)::

    python -m repro inject --stage wlast_bvalid_error --trace trace.json
    python -m repro campaign --kind ip --telemetry telemetry.json
    python -m repro report --telemetry telemetry.json
    python -m repro status --connect 10.0.0.5:7453        # fleet health
    python -m repro --log-level info campaign --kind ip --progress
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.export import write_campaign_json
from .analysis.report import render_series, render_table
from .area.gf12 import REFERENCE_PRESCALE_STEP
from .area.model import estimate_area, prescaler_saving
from .axi.types import axsize_of
from .baselines.features import TABLE2_COLUMNS, table2_profiles
from .faults.campaign import (
    measure_stall_detection_latency,
    run_campaign,
    run_injection,
)
from .faults.types import FIG9_WRITE_STAGES, InjectionStage
from .orchestrate import CampaignSpec, make_executor, run_campaign_spec
from .orchestrate.distributed import (
    DEFAULT_CONNECT_RETRY,
    DEFAULT_LEASE_TIMEOUT,
    DistributedExecutor,
    default_worker_id,
    request_status,
    worker_loop,
)
from .orchestrate.remote import ProtocolError
from .orchestrate.executor import START_METHOD_ENV
from .soc.experiment import FIG11_LABELS, FIG11_STAGES, run_fig11
from .telemetry import (
    KernelTracer,
    MetricsRegistry,
    read_telemetry,
    setup_logging,
    write_chrome_trace,
    write_telemetry,
)
from .tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from .tmu.config import TmuConfig, Variant


def _variant(value: str) -> Variant:
    try:
        return Variant(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"variant must be 'tiny' or 'full', got {value!r}"
        )


def _positive_int(value: str) -> int:
    count = int(value)
    if count <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value!r}")
    return count


def _narrow_bytes(value: str) -> int:
    width = int(value)
    if width not in (1, 2, 4, 8):
        raise argparse.ArgumentTypeError(
            f"--narrow must be a power-of-two beat width up to the "
            f"8-byte bus (1/2/4/8), got {value!r}"
        )
    return width


def _stage(value: str) -> InjectionStage:
    try:
        return InjectionStage(value)
    except ValueError:
        choices = ", ".join(stage.value for stage in InjectionStage)
        raise argparse.ArgumentTypeError(
            f"unknown stage {value!r}; choose from: {choices}"
        )


def _hostport(value: str):
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return (host or "127.0.0.1", int(port))


def _distributed_executor(args) -> Optional[DistributedExecutor]:
    """Build (and announce) the coordinator when --distributed is set."""
    if not getattr(args, "distributed", False):
        return None
    executor = make_executor(
        1,
        distributed={
            "host": args.bind,
            "port": args.port,
            "local_workers": args.local_workers,
            "lease_timeout": args.lease_timeout,
            "store_dir": getattr(args, "store", None),
        },
    )
    host, port = executor.bind()
    print(
        f"coordinator listening on {host}:{port} "
        f"({args.local_workers} local worker(s); join with: "
        f"repro worker --connect {host}:{port})",
        file=sys.stderr,
    )
    return executor


def _check_resume(args, spec: CampaignSpec) -> Optional[int]:
    """Validate --resume against the spec's cache namespace.

    Resume *is* the engine's cache-first dispatch; this only insists the
    preconditions hold (a cache directory, and a namespace for this
    exact spec hash to pick up) and says out loud what will be skipped.
    """
    if not getattr(args, "resume", False):
        return None
    if not args.cache_dir:
        print("error: --resume requires --cache-dir", file=sys.stderr)
        return 2
    namespace = Path(args.cache_dir) / spec.spec_hash()
    if not namespace.is_dir():
        print(
            f"error: nothing to resume: no cached campaign {spec.spec_hash()} "
            f"under {args.cache_dir} (the spec hash keys the cache; any "
            f"changed parameter starts a fresh campaign)",
            file=sys.stderr,
        )
        return 2
    cached = sum(1 for _ in namespace.glob("shard-*.json"))
    total = len(spec.runs())
    print(
        f"resuming campaign {spec.spec_hash()}: {cached} shard(s) cached, "
        f"re-executing the missing ones of {total} run(s)",
        file=sys.stderr,
    )
    return None


def cmd_area(args) -> int:
    report = estimate_area(
        args.variant, args.outstanding, args.step, sticky=not args.no_sticky
    )
    rows = [[name, f"{value:.1f}"] for name, value in report.breakdown().items()]
    print(
        render_table(
            ["component", "um^2"],
            rows,
            title=(
                f"{args.variant.value} TMU, {args.outstanding} outstanding, "
                f"prescale step {args.step} (GF12 model)"
            ),
        )
    )
    return 0


def cmd_inject(args) -> int:
    config = TmuConfig(variant=args.variant)
    stages = args.stages or [InjectionStage.WLAST_TO_BVALID]
    # A live tracer rides into the harness; with several stages it makes
    # harness_kwargs non-serializable, which routes the campaign through
    # the in-process serial fallback — exactly right for a trace run.
    tracer = KernelTracer() if args.trace else None
    harness_kwargs = {"sim_tracer": tracer} if tracer is not None else None
    if len(stages) == 1 and (args.workers or 1) <= 1:
        result = run_injection(
            config, stages[0], beats=args.beats, harness_kwargs=harness_kwargs
        )
        rows = [
            ["detected", result.detected],
            ["latency from injection", result.latency_from_injection],
            ["latency from txn start", result.latency_from_start],
            ["fault kind", result.fault_kind],
            ["attributed phase", result.fault_phase],
            ["recovered", result.recovered],
            ["subordinate resets", result.resets_taken],
        ]
        print(
            render_table(
                ["metric", "value"],
                rows,
                title=f"{stages[0].value} on {args.variant.value}, {args.beats} beats",
            )
        )
        code = 0 if result.detected and result.recovered else 1
    else:
        # Several stages (or an explicit worker count): run as a campaign.
        results = run_campaign(
            [config], stages, beats=args.beats, workers=args.workers,
            harness_kwargs=harness_kwargs,
        )
        rows = [
            [
                result.stage.value,
                result.detected,
                result.latency_from_injection,
                result.latency_from_start,
                result.recovered,
            ]
            for result in results
        ]
        print(
            render_table(
                ["stage", "detected", "lat(inject)", "lat(start)", "recovered"],
                rows,
                title=f"{len(results)} injections on {args.variant.value}, "
                f"{args.beats} beats",
            )
        )
        code = 0 if all(r.detected and r.recovered for r in results) else 1
    if tracer is not None:
        write_chrome_trace(tracer, args.trace)
        print(f"wrote {args.trace}", file=sys.stderr)
    return code


def cmd_fig7(args) -> int:
    capacities = [1, 2, 4, 8, 16, 32, 64, 128]
    series = []
    for variant, label in ((Variant.TINY, "Tc"), (Variant.FULL, "Fc")):
        series.append(
            (label, [estimate_area(variant, n).total_um2 for n in capacities])
        )
        series.append(
            (
                f"{label}+Pre",
                [
                    estimate_area(
                        variant, n, REFERENCE_PRESCALE_STEP, sticky=True
                    ).total_um2
                    for n in capacities
                ],
            )
        )
    print(
        render_series(
            "outstanding",
            capacities,
            series,
            title="Fig. 7: area [um^2] vs outstanding transactions",
        )
    )
    for variant, label in ((Variant.TINY, "Tc"), (Variant.FULL, "Fc")):
        save16 = prescaler_saving(variant, 16) * 100
        save32 = prescaler_saving(variant, 32) * 100
        print(f"{label} prescaler saving @16/32 outstanding: "
              f"{save16:.1f}% / {save32:.1f}%")
    return 0


def cmd_fig8(args) -> int:
    steps = [1, 2, 4, 8, 16, 32, 64, 128]
    budget = args.budget
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=budget), SpanBudgets(base=budget, per_beat=0)
    )
    areas, latencies = [], []
    for step in steps:
        areas.append(
            estimate_area(
                args.variant, 128, step, sticky=True, budget_cycles=budget
            ).total_um2
        )
        config = TmuConfig(
            variant=args.variant,
            max_uniq_ids=4,
            txn_per_id=32,
            prescale_step=step,
            budgets=budgets,
            max_txn_cycles=budget,
        )
        latencies.append(
            measure_stall_detection_latency(config, offsets=range(min(step, 8)))
        )
    print(
        render_series(
            "step",
            steps,
            [("area_um2", areas), ("worst_detect_latency", latencies)],
            title=(
                f"Fig. 8 ({args.variant.value}): 128 outstanding, "
                f"{budget}-cycle budget, total stall"
            ),
        )
    )
    return 0


def cmd_fig11(args) -> int:
    seeds = tuple(range(args.seeds))
    axes = _dark_corner_kwargs(args)
    spec = CampaignSpec.system(
        (Variant.FULL, Variant.TINY), FIG11_STAGES, seeds=seeds, **axes
    )
    code = _check_resume(args, spec)
    if code is not None:
        return code
    executor = _distributed_executor(args)
    if args.batch_lanes is not None and executor is not None:
        print("--batch-lanes cannot be combined with --distributed",
              file=sys.stderr)
        return 2
    metrics = MetricsRegistry() if args.telemetry else None
    series = run_fig11(
        workers=args.workers,
        cache_dir=args.cache_dir,
        executor=executor,
        seeds=seeds,
        batch_lanes=args.batch_lanes,
        batch_verify=args.batch_verify,
        metrics=metrics,
        store=args.store,
        **axes,
    )
    if metrics is not None:
        write_telemetry(metrics, args.telemetry)
        print(f"wrote {args.telemetry}", file=sys.stderr)
    rows = []
    for i, label in enumerate(FIG11_LABELS):
        # Series are stage-major then seed: seed 0 is the figure's
        # canonical phase; extra seeds only widen the campaign JSON.
        fc = series[Variant.FULL.value][i * len(seeds)]
        tc = series[Variant.TINY.value][i * len(seeds)]
        rows.append(
            [label, fc.fig11_latency, tc.latency_from_start,
             "ok" if fc.recovered and tc.recovered else "FAILED"]
        )
    print(
        render_table(
            ["stage", "Fc latency", "Tc latency", "recovery"],
            rows,
            title="Fig. 11: system-level detection latency (250-beat frame)",
        )
    )
    return 0


def _campaign_spec(args) -> CampaignSpec:
    variants = args.variants or [Variant.FULL, Variant.TINY]
    axes = _dark_corner_kwargs(args)
    if args.kind == "system":
        stages = args.stages or list(FIG11_STAGES)
        return CampaignSpec.system(
            variants,
            stages,
            beats=args.beats if args.beats is not None else 250,
            seeds=range(args.seeds),
            background=args.background,
            **axes,
        )
    stages = args.stages or list(FIG9_WRITE_STAGES)
    return CampaignSpec.ip(
        [TmuConfig(variant=variant) for variant in variants],
        stages,
        beats=args.beats if args.beats is not None else 8,
        seeds=range(args.seeds),
        **axes,
    )


def cmd_campaign(args, executor=None) -> int:
    spec = _campaign_spec(args)
    code = _check_resume(args, spec)
    if code is not None:
        return code
    if executor is None:
        executor = _distributed_executor(args)
    batch_lanes = getattr(args, "batch_lanes", None)
    if batch_lanes is not None and executor is not None:
        print("--batch-lanes cannot be combined with --distributed",
              file=sys.stderr)
        return 2
    metrics = MetricsRegistry() if args.telemetry else None
    results = run_campaign_spec(
        spec,
        workers=getattr(args, "workers", None),
        shard_size=args.shard_size,
        cache_dir=args.cache_dir,
        progress=args.progress,
        executor=executor,
        batch_lanes=batch_lanes,
        batch_verify=getattr(args, "batch_verify", False),
        metrics=metrics,
        store=args.store,
    )
    if metrics is not None:
        write_telemetry(metrics, args.telemetry)
        print(f"wrote {args.telemetry}", file=sys.stderr)
    rows = [
        [
            run.run_id,
            result.detected,
            result.latency_from_injection,
            result.latency_from_start,
            result.recovered,
        ]
        for run, result in zip(spec.runs(), results)
    ]
    print(
        render_table(
            ["run", "detected", "lat(inject)", "lat(start)", "recovered"],
            rows,
            title=(
                f"{args.kind} campaign: {len(spec.configs)} config(s) x "
                f"{len(spec.stages)} stage(s) x {len(spec.seeds)} seed(s)"
            ),
        )
    )
    detected = sum(1 for result in results if result.detected)
    recovered = sum(1 for result in results if result.recovered)
    print(f"{len(results)} runs | {detected} detected | {recovered} recovered")
    if args.json_out:
        # Streamed writer: byte-identical to to_json(campaign_dict(...))
        # but never materializes the export dict.
        with open(args.json_out, "w") as stream:
            write_campaign_json(results, stream, spec=spec)
        print(f"wrote {args.json_out}")
    return 0 if detected == recovered == len(results) else 1


def cmd_serve(args) -> int:
    """Coordinator: serve the campaign's shards to pull workers."""
    executor = DistributedExecutor(
        host=args.bind,
        port=args.port,
        local_workers=args.local_workers,
        lease_timeout=args.lease_timeout,
        store_dir=args.store,
    )
    host, port = executor.bind()
    print(
        f"serving shards on {host}:{port} "
        f"({args.local_workers} local worker(s); join with: "
        f"repro worker --connect {host}:{port})",
        file=sys.stderr,
    )
    return cmd_campaign(args, executor=executor)


def _worker_process(
    host, port, worker_id, retry_seconds, log_level, log_json, store=None
):
    """Spawned worker entry point (module-level, so it pickles).

    Spawn-start children inherit no logging configuration from the
    parent, so each one re-applies ``--log-level/--log-json`` before
    pulling shards; :func:`worker_loop` then tags every record with the
    worker id, keeping interleaved multi-process output attributable.
    """
    if log_level or log_json:
        setup_logging(log_level or "warning", json_lines=log_json)
    worker_loop(
        host, port, worker_id=worker_id, retry_seconds=retry_seconds,
        store=store,
    )


def cmd_worker(args) -> int:
    """Worker: pull shards from a coordinator until it says done."""
    host, port = args.connect
    if args.processes > 1:
        method = os.environ.get(START_METHOD_ENV, "").strip() or None
        context = multiprocessing.get_context(method)
        processes = [
            context.Process(
                target=_worker_process,
                args=(
                    host,
                    port,
                    f"{default_worker_id()}-{index}",
                    args.retry,
                    args.log_level,
                    args.log_json,
                    args.store,
                ),
            )
            for index in range(args.processes)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        return 0 if all(process.exitcode == 0 for process in processes) else 1
    try:
        executed = worker_loop(
            host, port, retry_seconds=args.retry, store=args.store
        )
    except (OSError, ProtocolError) as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return 1
    print(f"worker {default_worker_id()}: executed {executed} shard(s)")
    return 0


def cmd_report(args) -> int:
    """Summarize a ``telemetry.json`` artifact as readable tables."""
    try:
        metrics = read_telemetry(args.telemetry)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if counters:
        rows = [[name, value] for name, value in sorted(counters.items())]
        print(render_table(["counter", "count"], rows, title="counters"))
    if gauges:
        rows = [[name, value] for name, value in sorted(gauges.items())]
        print(render_table(["gauge", "value"], rows, title="gauges"))
    if histograms:
        # Rebuild real Histogram instruments so bucket labelling and the
        # mean live in exactly one place (the metrics module).
        registry = MetricsRegistry.from_dict({"histograms": histograms})
        rows = []
        for name, payload in sorted(histograms.items()):
            histogram = registry.histogram(name, payload["bounds"])
            mean = histogram.mean
            buckets = ", ".join(
                f"{label}: {count}" for label, count in histogram.nonzero()
            )
            rows.append(
                [
                    name,
                    histogram.count,
                    f"{mean:.4f}" if mean is not None else "--",
                    buckets or "(empty)",
                ]
            )
        print(
            render_table(
                ["histogram", "count", "mean", "populated buckets"],
                rows,
                title="histograms",
            )
        )
    if not (counters or gauges or histograms):
        print("telemetry file carries no metrics")
    return 0


def _format_event(event: dict) -> str:
    """One event-log entry as a ``+t event key=value ...`` line."""
    fields = " ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in ("t", "event")
    )
    line = f"+{event.get('t', 0.0):>9.3f}s  {event.get('event', '?')}"
    return f"{line}  {fields}" if fields else line


def cmd_status(args) -> int:
    """Poll a live coordinator for its fleet-health snapshot."""
    host, port = args.connect
    try:
        status = request_status(host, port, timeout=args.timeout)
    except (OSError, ProtocolError) as exc:
        print(f"status error: {exc}", file=sys.stderr)
        return 1
    if args.json_output:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    workers = status.get("workers", {})
    print(
        f"coordinator {host}:{port}: "
        f"{status.get('connected_workers', 0)} worker(s) connected"
    )
    if workers:
        rows = [
            [
                name,
                "yes" if info.get("connected") else "no",
                info.get("shards_completed", 0),
                f"{info.get('last_seen_ago_seconds', 0.0):.1f}s",
                (
                    f"{info['heartbeat_gap_seconds']:.1f}s"
                    if info.get("heartbeat_gap_seconds") is not None
                    else "--"
                ),
            ]
            for name, info in sorted(workers.items())
        ]
        print(
            render_table(
                ["worker", "connected", "shards", "last seen", "heartbeat gap"],
                rows,
            )
        )
    campaign = status.get("campaign")
    if campaign:
        print(
            f"campaign: {campaign.get('completed', 0)}/"
            f"{campaign.get('total', 0)} shard(s) done | "
            f"{campaign.get('pending', 0)} pending | "
            f"{campaign.get('reassignments', 0)} reassignment(s)"
        )
        leases = campaign.get("leases", [])
        if leases:
            rows = [
                [
                    lease.get("shard"),
                    lease.get("worker"),
                    f"{lease.get('expires_in', 0.0):.1f}s",
                    "EXPIRED" if lease.get("expired") else "live",
                ]
                for lease in leases
            ]
            print(
                render_table(["shard", "worker", "expires in", "lease"], rows)
            )
    else:
        print("campaign: none active")
    events = status.get("events", [])
    if events:
        print(f"last {len(events)} event(s):")
        for event in events:
            print(f"  {_format_event(event)}")
    return 0


def cmd_store_stats(args) -> int:
    """Point-in-time accounting of a result store's tiers."""
    from .orchestrate.store import ResultStore

    with ResultStore.open(args.root, cold_roots=args.cold or ()) as store:
        if store.cold_roots:
            store.index_cold()
        stats = store.stats()
    if args.json_output:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    rows = [
        [key, value if not isinstance(value, list) else ", ".join(value) or "--"]
        for key, value in stats.items()
    ]
    print(render_table(["field", "value"], rows, title=f"store {args.root}"))
    return 0


def cmd_store_migrate(args) -> int:
    """One-shot, idempotent import of a shard-JSON cache into a store."""
    from .orchestrate.store import ResultStore

    if not Path(args.cache_dir).is_dir():
        print(f"error: no such cache directory: {args.cache_dir}",
              file=sys.stderr)
        return 2
    with ResultStore.open(args.store) as store:
        outcome = store.migrate_cache(args.cache_dir)
    print(
        f"migrated {args.cache_dir} -> {args.store}: "
        f"{outcome['imported']} imported, "
        f"{outcome['skipped']} already present"
    )
    return 0


def cmd_table2(args) -> int:
    print(
        render_table(
            TABLE2_COLUMNS,
            [profile.row() for profile in table2_profiles()],
            title="Table II: comparison of AXI transaction monitors",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AXI4 TMU reproduction: run the paper's experiments",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=None,
        help="configure the 'repro' package logger at this level "
        "(default: logging untouched)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines instead of text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_area = sub.add_parser("area", help="GF12 area estimate for a TMU config")
    p_area.add_argument("--variant", type=_variant, default=Variant.TINY)
    p_area.add_argument("--outstanding", type=int, default=32)
    p_area.add_argument("--step", type=int, default=1)
    p_area.add_argument("--no-sticky", action="store_true")
    p_area.set_defaults(func=cmd_area)

    p_inject = sub.add_parser("inject", help="run fault injections")
    p_inject.add_argument("--variant", type=_variant, default=Variant.FULL)
    p_inject.add_argument(
        "--stage",
        type=_stage,
        action="append",
        dest="stages",
        help="injection stage; repeatable (default: wlast_bvalid_error)",
    )
    p_inject.add_argument("--beats", type=int, default=8)
    p_inject.add_argument(
        "--workers", type=int, default=None,
        help="process count for multi-stage sweeps (default: REPRO_WORKERS or 1)",
    )
    p_inject.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record the simulation schedule as a Chrome trace-event "
        "JSON (load in Perfetto / chrome://tracing)",
    )
    p_inject.set_defaults(func=cmd_inject)

    p_fig7 = sub.add_parser("fig7", help="area scaling sweep")
    p_fig7.set_defaults(func=cmd_fig7)

    p_fig8 = sub.add_parser("fig8", help="prescaler area/latency trade-off")
    p_fig8.add_argument("--variant", type=_variant, default=Variant.FULL)
    p_fig8.add_argument("--budget", type=int, default=256)
    p_fig8.set_defaults(func=cmd_fig8)

    p_fig11 = sub.add_parser("fig11", help="system-level latency series")
    p_fig11.add_argument(
        "--workers", type=int, default=None,
        help="shard the sweep over N processes (default: REPRO_WORKERS or 1)",
    )
    p_fig11.add_argument(
        "--cache-dir", default=None,
        help="persist completed shards here; re-runs skip them",
    )
    _add_store_arg(p_fig11)
    p_fig11.add_argument(
        "--seeds", type=_positive_int, default=1,
        help="start-delay phase offsets 0..N-1 per (variant, stage) point",
    )
    p_fig11.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write campaign metrics (telemetry.json) here; summarize "
        "with: repro report --telemetry PATH",
    )
    _add_dark_corner_axes(p_fig11)
    _add_batch_args(p_fig11)
    _add_distributed_args(p_fig11)
    _add_resume_arg(p_fig11)
    p_fig11.set_defaults(func=cmd_fig11)

    p_table2 = sub.add_parser("table2", help="monitor comparison matrix")
    p_table2.set_defaults(func=cmd_table2)

    p_campaign = sub.add_parser(
        "campaign", help="sharded fault-injection sweep (configs x stages x seeds)"
    )
    _add_campaign_axes(p_campaign)
    p_campaign.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: REPRO_WORKERS or 1)",
    )
    _add_batch_args(p_campaign)
    _add_distributed_args(p_campaign)
    _add_resume_arg(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)

    p_serve = sub.add_parser(
        "serve",
        help="distributed campaign coordinator: serve shards to pull workers",
        description=(
            "Run a campaign as the coordinator of a distributed executor: "
            "shards are served over TCP to any number of repro worker "
            "processes (plus --workers local loopback ones), leases expire "
            "and reassign on worker death, and completed shards stream into "
            "--cache-dir so a killed campaign resumes with --resume."
        ),
    )
    _add_campaign_axes(p_serve)
    p_serve.add_argument(
        "--port", type=int, default=7453,
        help="TCP port to serve shards on (0 = ephemeral; default 7453)",
    )
    p_serve.add_argument(
        "--bind", default="127.0.0.1",
        help="bind address (default loopback; 0.0.0.0 admits LAN workers)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0, dest="local_workers",
        help="loopback worker processes to spawn alongside the coordinator",
    )
    p_serve.add_argument(
        "--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT,
        help="seconds before an unanswered shard lease is reassigned",
    )
    _add_resume_arg(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="distributed campaign worker: pull and execute shards",
        description=(
            "Connect to a repro serve / --distributed coordinator, pull "
            "shards, execute them with the same per-run harness "
            "construction as every other executor, and stream the results "
            "back until the coordinator says done."
        ),
    )
    p_worker.add_argument(
        "--connect", type=_hostport, required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    p_worker.add_argument(
        "--processes", type=_positive_int, default=1,
        help="parallel worker processes to run (default 1)",
    )
    p_worker.add_argument(
        "--retry", type=float, default=DEFAULT_CONNECT_RETRY,
        help="seconds to keep retrying the initial connection",
    )
    p_worker.add_argument(
        "--store", default=None, metavar="DIR",
        help="shared result store: look up each assigned run before "
        "simulating it and publish results for other workers",
    )
    p_worker.set_defaults(func=cmd_worker)

    p_store = sub.add_parser(
        "store",
        help="result-store maintenance: stats and cache migration",
        description=(
            "Inspect or populate a run-granular result store (the "
            "hot/warm/cold tier behind --store)."
        ),
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_stats = store_sub.add_parser(
        "stats", help="report a store's row counts, size and tiers"
    )
    p_stats.add_argument("root", help="store directory")
    p_stats.add_argument(
        "--cold", action="append", metavar="DIR",
        help="shard-cache directory to mount (and index) as a cold tier; "
        "repeatable",
    )
    p_stats.add_argument(
        "--json", dest="json_output", action="store_true",
        help="print the stats as JSON instead of a table",
    )
    p_stats.set_defaults(func=cmd_store_stats)
    p_migrate = store_sub.add_parser(
        "migrate",
        help="import a shard-JSON cache directory into a store "
        "(one-shot, idempotent)",
    )
    p_migrate.add_argument("cache_dir", help="shard cache directory to import")
    p_migrate.add_argument(
        "--store", required=True, metavar="DIR",
        help="target store directory (created if missing)",
    )
    p_migrate.set_defaults(func=cmd_store_migrate)

    p_report = sub.add_parser(
        "report",
        help="summarize campaign telemetry artifacts",
        description=(
            "Render the counters, gauges and histograms a campaign "
            "recorded with --telemetry as readable tables."
        ),
    )
    p_report.add_argument(
        "--telemetry", required=True, metavar="PATH",
        help="telemetry.json written by campaign/fig11 --telemetry",
    )
    p_report.set_defaults(func=cmd_report)

    p_status = sub.add_parser(
        "status",
        help="poll a live coordinator's fleet health",
        description=(
            "Open a one-shot status connection to a repro serve / "
            "--distributed coordinator and render its fleet snapshot: "
            "connected workers, shard leases (including expired ones "
            "awaiting reassignment) and the recent event log."
        ),
    )
    p_status.add_argument(
        "--connect", type=_hostport, required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    p_status.add_argument(
        "--timeout", type=float, default=5.0,
        help="seconds to wait for the coordinator's reply",
    )
    p_status.add_argument(
        "--json", dest="json_output", action="store_true",
        help="print the raw snapshot as JSON instead of tables",
    )
    p_status.set_defaults(func=cmd_status)

    return parser


def _add_campaign_axes(parser: argparse.ArgumentParser) -> None:
    """The sweep axes and output options shared by campaign and serve."""
    parser.add_argument("--kind", choices=("ip", "system"), default="ip")
    parser.add_argument(
        "--variant", type=_variant, action="append", dest="variants",
        help="TMU variant; repeatable (default: both)",
    )
    parser.add_argument(
        "--stage", type=_stage, action="append", dest="stages",
        help="injection stage; repeatable (default: the figure's stage list)",
    )
    parser.add_argument(
        "--beats", type=int, default=None,
        help="burst length (default: 8 for ip, 250 for system)",
    )
    parser.add_argument(
        "--seeds", type=_positive_int, default=1,
        help="phase-offset seeds 0..N-1 per (config, stage) point",
    )
    parser.add_argument(
        "--background", type=int, default=0,
        help="background CVA6 transactions (system campaigns)",
    )
    _add_dark_corner_axes(parser)
    parser.add_argument("--shard-size", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=None,
        help="persist completed shards here; re-runs skip them",
    )
    _add_store_arg(parser)
    parser.add_argument(
        "--json", dest="json_out", default=None,
        help="also export the full campaign to this JSON file",
    )
    parser.add_argument(
        "--progress", action="store_true", help="live progress/ETA on stderr"
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write campaign metrics (telemetry.json) here; summarize "
        "with: repro report --telemetry PATH",
    )


def _add_dark_corner_axes(parser: argparse.ArgumentParser) -> None:
    """The AXI dark-corner sweep axes: narrow, outstanding, reorder."""
    parser.add_argument(
        "--narrow", type=_narrow_bytes, default=None, metavar="BYTES",
        help="bytes per beat (1/2/4/8): narrow the workload's AxSIZE "
        "below the 8-byte bus (default: full-width)",
    )
    parser.add_argument(
        "--outstanding", type=_positive_int, default=1,
        help="concurrent outstanding transactions in the workload "
        "(default 1 = the legacy single-stream shape)",
    )
    parser.add_argument(
        "--reorder-depth", type=int, default=0,
        help="subordinate response reorder window: complete B/R "
        "responses out of request order within the first N queued "
        "(0/1 = strict in-order)",
    )


def _dark_corner_kwargs(args) -> dict:
    """size/outstanding/reorder_depth kwargs from parsed dark-corner args."""
    return {
        "size": 3 if args.narrow is None else axsize_of(args.narrow),
        "outstanding": args.outstanding,
        "reorder_depth": args.reorder_depth,
    }


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="run-granular result store: runs any earlier campaign "
        "already simulated are fetched instead of re-run (a superset "
        "sweep executes only its frontier); --cache-dir mounts as the "
        "store's cold tier",
    )


def _add_batch_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-lanes", type=_positive_int, default=None,
        help="lockstep batch execution: pack up to N same-config seed "
        "lanes and derive followers from one scalar leader run "
        "(byte-identical results; excludes --distributed/--workers > 1)",
    )
    parser.add_argument(
        "--batch-verify", action="store_true",
        help="with --batch-lanes: replay every derived lane on the "
        "scalar verify kernel and fail loudly on any divergence",
    )


def _add_distributed_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--distributed", action="store_true",
        help="serve shards over TCP to repro worker processes instead of "
        "an in-process pool",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="coordinator TCP port (0 = ephemeral; implies --distributed "
        "workers must be told the printed port)",
    )
    parser.add_argument(
        "--bind", default="127.0.0.1",
        help="coordinator bind address (default loopback; 0.0.0.0 admits "
        "LAN workers)",
    )
    parser.add_argument(
        "--local-workers", type=int, default=0,
        help="loopback worker processes the coordinator spawns itself",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT,
        help="seconds before an unanswered shard lease is reassigned",
    )


def _add_resume_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--resume", action="store_true",
        help="resume a previous campaign from --cache-dir: cached shards "
        "are loaded, only missing ones re-execute (requires an existing "
        "cache namespace for this exact spec)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level or args.log_json:
        setup_logging(args.log_level or "warning", json_lines=args.log_json)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
