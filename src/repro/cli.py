"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro area --variant tiny --outstanding 32 --step 32
    python -m repro inject --variant full --stage wlast_bvalid_error
    python -m repro fig7
    python -m repro fig8 --variant tiny
    python -m repro fig11 --workers 4
    python -m repro table2
    python -m repro campaign --kind ip --workers 4 --seeds 2 --progress

Lockstep batch execution (one scalar leader per pack of same-config
seed lanes; byte-identical results)::

    python -m repro fig11 --seeds 64 --batch-lanes 64
    python -m repro campaign --kind ip --seeds 64 --batch-lanes 64 \
        --batch-verify --progress

Distributed campaigns (coordinator + any number of pull workers)::

    python -m repro serve --port 7453 --workers 2 --kind system \
        --cache-dir /shared/cache --json campaign.json
    python -m repro worker --connect 10.0.0.5:7453        # on any machine
    python -m repro campaign --distributed --local-workers 2 --kind ip
    python -m repro fig11 --distributed --local-workers 2
    python -m repro campaign --resume --cache-dir /shared/cache ...
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.export import campaign_dict, to_json
from .analysis.report import render_series, render_table
from .area.gf12 import REFERENCE_PRESCALE_STEP
from .area.model import estimate_area, prescaler_saving
from .baselines.features import TABLE2_COLUMNS, table2_profiles
from .faults.campaign import (
    measure_stall_detection_latency,
    run_campaign,
    run_injection,
)
from .faults.types import FIG9_WRITE_STAGES, InjectionStage
from .orchestrate import CampaignSpec, make_executor, run_campaign_spec
from .orchestrate.distributed import (
    DEFAULT_CONNECT_RETRY,
    DEFAULT_LEASE_TIMEOUT,
    DistributedExecutor,
    default_worker_id,
    worker_loop,
)
from .orchestrate.remote import ProtocolError
from .orchestrate.executor import START_METHOD_ENV
from .soc.experiment import FIG11_LABELS, FIG11_STAGES, run_fig11
from .tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from .tmu.config import TmuConfig, Variant


def _variant(value: str) -> Variant:
    try:
        return Variant(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"variant must be 'tiny' or 'full', got {value!r}"
        )


def _positive_int(value: str) -> int:
    count = int(value)
    if count <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value!r}")
    return count


def _stage(value: str) -> InjectionStage:
    try:
        return InjectionStage(value)
    except ValueError:
        choices = ", ".join(stage.value for stage in InjectionStage)
        raise argparse.ArgumentTypeError(
            f"unknown stage {value!r}; choose from: {choices}"
        )


def _hostport(value: str):
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return (host or "127.0.0.1", int(port))


def _distributed_executor(args) -> Optional[DistributedExecutor]:
    """Build (and announce) the coordinator when --distributed is set."""
    if not getattr(args, "distributed", False):
        return None
    executor = make_executor(
        1,
        distributed={
            "host": args.bind,
            "port": args.port,
            "local_workers": args.local_workers,
            "lease_timeout": args.lease_timeout,
        },
    )
    host, port = executor.bind()
    print(
        f"coordinator listening on {host}:{port} "
        f"({args.local_workers} local worker(s); join with: "
        f"repro worker --connect {host}:{port})",
        file=sys.stderr,
    )
    return executor


def _check_resume(args, spec: CampaignSpec) -> Optional[int]:
    """Validate --resume against the spec's cache namespace.

    Resume *is* the engine's cache-first dispatch; this only insists the
    preconditions hold (a cache directory, and a namespace for this
    exact spec hash to pick up) and says out loud what will be skipped.
    """
    if not getattr(args, "resume", False):
        return None
    if not args.cache_dir:
        print("error: --resume requires --cache-dir", file=sys.stderr)
        return 2
    namespace = Path(args.cache_dir) / spec.spec_hash()
    if not namespace.is_dir():
        print(
            f"error: nothing to resume: no cached campaign {spec.spec_hash()} "
            f"under {args.cache_dir} (the spec hash keys the cache; any "
            f"changed parameter starts a fresh campaign)",
            file=sys.stderr,
        )
        return 2
    cached = sum(1 for _ in namespace.glob("shard-*.json"))
    total = len(spec.runs())
    print(
        f"resuming campaign {spec.spec_hash()}: {cached} shard(s) cached, "
        f"re-executing the missing ones of {total} run(s)",
        file=sys.stderr,
    )
    return None


def cmd_area(args) -> int:
    report = estimate_area(
        args.variant, args.outstanding, args.step, sticky=not args.no_sticky
    )
    rows = [[name, f"{value:.1f}"] for name, value in report.breakdown().items()]
    print(
        render_table(
            ["component", "um^2"],
            rows,
            title=(
                f"{args.variant.value} TMU, {args.outstanding} outstanding, "
                f"prescale step {args.step} (GF12 model)"
            ),
        )
    )
    return 0


def cmd_inject(args) -> int:
    config = TmuConfig(variant=args.variant)
    stages = args.stages or [InjectionStage.WLAST_TO_BVALID]
    if len(stages) == 1 and (args.workers or 1) <= 1:
        result = run_injection(config, stages[0], beats=args.beats)
        rows = [
            ["detected", result.detected],
            ["latency from injection", result.latency_from_injection],
            ["latency from txn start", result.latency_from_start],
            ["fault kind", result.fault_kind],
            ["attributed phase", result.fault_phase],
            ["recovered", result.recovered],
            ["subordinate resets", result.resets_taken],
        ]
        print(
            render_table(
                ["metric", "value"],
                rows,
                title=f"{stages[0].value} on {args.variant.value}, {args.beats} beats",
            )
        )
        return 0 if result.detected and result.recovered else 1
    # Several stages (or an explicit worker count): run as a campaign.
    results = run_campaign(
        [config], stages, beats=args.beats, workers=args.workers
    )
    rows = [
        [
            result.stage.value,
            result.detected,
            result.latency_from_injection,
            result.latency_from_start,
            result.recovered,
        ]
        for result in results
    ]
    print(
        render_table(
            ["stage", "detected", "lat(inject)", "lat(start)", "recovered"],
            rows,
            title=f"{len(results)} injections on {args.variant.value}, "
            f"{args.beats} beats",
        )
    )
    return 0 if all(r.detected and r.recovered for r in results) else 1


def cmd_fig7(args) -> int:
    capacities = [1, 2, 4, 8, 16, 32, 64, 128]
    series = []
    for variant, label in ((Variant.TINY, "Tc"), (Variant.FULL, "Fc")):
        series.append(
            (label, [estimate_area(variant, n).total_um2 for n in capacities])
        )
        series.append(
            (
                f"{label}+Pre",
                [
                    estimate_area(
                        variant, n, REFERENCE_PRESCALE_STEP, sticky=True
                    ).total_um2
                    for n in capacities
                ],
            )
        )
    print(
        render_series(
            "outstanding",
            capacities,
            series,
            title="Fig. 7: area [um^2] vs outstanding transactions",
        )
    )
    for variant, label in ((Variant.TINY, "Tc"), (Variant.FULL, "Fc")):
        save16 = prescaler_saving(variant, 16) * 100
        save32 = prescaler_saving(variant, 32) * 100
        print(f"{label} prescaler saving @16/32 outstanding: "
              f"{save16:.1f}% / {save32:.1f}%")
    return 0


def cmd_fig8(args) -> int:
    steps = [1, 2, 4, 8, 16, 32, 64, 128]
    budget = args.budget
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=budget), SpanBudgets(base=budget, per_beat=0)
    )
    areas, latencies = [], []
    for step in steps:
        areas.append(
            estimate_area(
                args.variant, 128, step, sticky=True, budget_cycles=budget
            ).total_um2
        )
        config = TmuConfig(
            variant=args.variant,
            max_uniq_ids=4,
            txn_per_id=32,
            prescale_step=step,
            budgets=budgets,
            max_txn_cycles=budget,
        )
        latencies.append(
            measure_stall_detection_latency(config, offsets=range(min(step, 8)))
        )
    print(
        render_series(
            "step",
            steps,
            [("area_um2", areas), ("worst_detect_latency", latencies)],
            title=(
                f"Fig. 8 ({args.variant.value}): 128 outstanding, "
                f"{budget}-cycle budget, total stall"
            ),
        )
    )
    return 0


def cmd_fig11(args) -> int:
    seeds = tuple(range(args.seeds))
    spec = CampaignSpec.system(
        (Variant.FULL, Variant.TINY), FIG11_STAGES, seeds=seeds
    )
    code = _check_resume(args, spec)
    if code is not None:
        return code
    executor = _distributed_executor(args)
    if args.batch_lanes is not None and executor is not None:
        print("--batch-lanes cannot be combined with --distributed",
              file=sys.stderr)
        return 2
    series = run_fig11(
        workers=args.workers,
        cache_dir=args.cache_dir,
        executor=executor,
        seeds=seeds,
        batch_lanes=args.batch_lanes,
        batch_verify=args.batch_verify,
    )
    rows = []
    for i, label in enumerate(FIG11_LABELS):
        # Series are stage-major then seed: seed 0 is the figure's
        # canonical phase; extra seeds only widen the campaign JSON.
        fc = series[Variant.FULL.value][i * len(seeds)]
        tc = series[Variant.TINY.value][i * len(seeds)]
        rows.append(
            [label, fc.fig11_latency, tc.latency_from_start,
             "ok" if fc.recovered and tc.recovered else "FAILED"]
        )
    print(
        render_table(
            ["stage", "Fc latency", "Tc latency", "recovery"],
            rows,
            title="Fig. 11: system-level detection latency (250-beat frame)",
        )
    )
    return 0


def _campaign_spec(args) -> CampaignSpec:
    variants = args.variants or [Variant.FULL, Variant.TINY]
    if args.kind == "system":
        stages = args.stages or list(FIG11_STAGES)
        return CampaignSpec.system(
            variants,
            stages,
            beats=args.beats if args.beats is not None else 250,
            seeds=range(args.seeds),
            background=args.background,
        )
    stages = args.stages or list(FIG9_WRITE_STAGES)
    return CampaignSpec.ip(
        [TmuConfig(variant=variant) for variant in variants],
        stages,
        beats=args.beats if args.beats is not None else 8,
        seeds=range(args.seeds),
    )


def cmd_campaign(args, executor=None) -> int:
    spec = _campaign_spec(args)
    code = _check_resume(args, spec)
    if code is not None:
        return code
    if executor is None:
        executor = _distributed_executor(args)
    batch_lanes = getattr(args, "batch_lanes", None)
    if batch_lanes is not None and executor is not None:
        print("--batch-lanes cannot be combined with --distributed",
              file=sys.stderr)
        return 2
    results = run_campaign_spec(
        spec,
        workers=getattr(args, "workers", None),
        shard_size=args.shard_size,
        cache_dir=args.cache_dir,
        progress=args.progress,
        executor=executor,
        batch_lanes=batch_lanes,
        batch_verify=getattr(args, "batch_verify", False),
    )
    rows = [
        [
            run.run_id,
            result.detected,
            result.latency_from_injection,
            result.latency_from_start,
            result.recovered,
        ]
        for run, result in zip(spec.runs(), results)
    ]
    print(
        render_table(
            ["run", "detected", "lat(inject)", "lat(start)", "recovered"],
            rows,
            title=(
                f"{args.kind} campaign: {len(spec.configs)} config(s) x "
                f"{len(spec.stages)} stage(s) x {len(spec.seeds)} seed(s)"
            ),
        )
    )
    detected = sum(1 for result in results if result.detected)
    recovered = sum(1 for result in results if result.recovered)
    print(f"{len(results)} runs | {detected} detected | {recovered} recovered")
    if args.json_out:
        with open(args.json_out, "w") as stream:
            stream.write(to_json(campaign_dict(results, spec=spec)))
        print(f"wrote {args.json_out}")
    return 0 if detected == recovered == len(results) else 1


def cmd_serve(args) -> int:
    """Coordinator: serve the campaign's shards to pull workers."""
    executor = DistributedExecutor(
        host=args.bind,
        port=args.port,
        local_workers=args.local_workers,
        lease_timeout=args.lease_timeout,
    )
    host, port = executor.bind()
    print(
        f"serving shards on {host}:{port} "
        f"({args.local_workers} local worker(s); join with: "
        f"repro worker --connect {host}:{port})",
        file=sys.stderr,
    )
    return cmd_campaign(args, executor=executor)


def cmd_worker(args) -> int:
    """Worker: pull shards from a coordinator until it says done."""
    host, port = args.connect
    if args.processes > 1:
        method = os.environ.get(START_METHOD_ENV, "").strip() or None
        context = multiprocessing.get_context(method)
        processes = [
            context.Process(
                target=worker_loop,
                args=(host, port),
                kwargs={
                    "worker_id": f"{default_worker_id()}-{index}",
                    "retry_seconds": args.retry,
                },
            )
            for index in range(args.processes)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        return 0 if all(process.exitcode == 0 for process in processes) else 1
    try:
        executed = worker_loop(host, port, retry_seconds=args.retry)
    except (OSError, ProtocolError) as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return 1
    print(f"worker {default_worker_id()}: executed {executed} shard(s)")
    return 0


def cmd_table2(args) -> int:
    print(
        render_table(
            TABLE2_COLUMNS,
            [profile.row() for profile in table2_profiles()],
            title="Table II: comparison of AXI transaction monitors",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AXI4 TMU reproduction: run the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_area = sub.add_parser("area", help="GF12 area estimate for a TMU config")
    p_area.add_argument("--variant", type=_variant, default=Variant.TINY)
    p_area.add_argument("--outstanding", type=int, default=32)
    p_area.add_argument("--step", type=int, default=1)
    p_area.add_argument("--no-sticky", action="store_true")
    p_area.set_defaults(func=cmd_area)

    p_inject = sub.add_parser("inject", help="run fault injections")
    p_inject.add_argument("--variant", type=_variant, default=Variant.FULL)
    p_inject.add_argument(
        "--stage",
        type=_stage,
        action="append",
        dest="stages",
        help="injection stage; repeatable (default: wlast_bvalid_error)",
    )
    p_inject.add_argument("--beats", type=int, default=8)
    p_inject.add_argument(
        "--workers", type=int, default=None,
        help="process count for multi-stage sweeps (default: REPRO_WORKERS or 1)",
    )
    p_inject.set_defaults(func=cmd_inject)

    p_fig7 = sub.add_parser("fig7", help="area scaling sweep")
    p_fig7.set_defaults(func=cmd_fig7)

    p_fig8 = sub.add_parser("fig8", help="prescaler area/latency trade-off")
    p_fig8.add_argument("--variant", type=_variant, default=Variant.FULL)
    p_fig8.add_argument("--budget", type=int, default=256)
    p_fig8.set_defaults(func=cmd_fig8)

    p_fig11 = sub.add_parser("fig11", help="system-level latency series")
    p_fig11.add_argument(
        "--workers", type=int, default=None,
        help="shard the sweep over N processes (default: REPRO_WORKERS or 1)",
    )
    p_fig11.add_argument(
        "--cache-dir", default=None,
        help="persist completed shards here; re-runs skip them",
    )
    p_fig11.add_argument(
        "--seeds", type=_positive_int, default=1,
        help="start-delay phase offsets 0..N-1 per (variant, stage) point",
    )
    _add_batch_args(p_fig11)
    _add_distributed_args(p_fig11)
    _add_resume_arg(p_fig11)
    p_fig11.set_defaults(func=cmd_fig11)

    p_table2 = sub.add_parser("table2", help="monitor comparison matrix")
    p_table2.set_defaults(func=cmd_table2)

    p_campaign = sub.add_parser(
        "campaign", help="sharded fault-injection sweep (configs x stages x seeds)"
    )
    _add_campaign_axes(p_campaign)
    p_campaign.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: REPRO_WORKERS or 1)",
    )
    _add_batch_args(p_campaign)
    _add_distributed_args(p_campaign)
    _add_resume_arg(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)

    p_serve = sub.add_parser(
        "serve",
        help="distributed campaign coordinator: serve shards to pull workers",
        description=(
            "Run a campaign as the coordinator of a distributed executor: "
            "shards are served over TCP to any number of repro worker "
            "processes (plus --workers local loopback ones), leases expire "
            "and reassign on worker death, and completed shards stream into "
            "--cache-dir so a killed campaign resumes with --resume."
        ),
    )
    _add_campaign_axes(p_serve)
    p_serve.add_argument(
        "--port", type=int, default=7453,
        help="TCP port to serve shards on (0 = ephemeral; default 7453)",
    )
    p_serve.add_argument(
        "--bind", default="127.0.0.1",
        help="bind address (default loopback; 0.0.0.0 admits LAN workers)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0, dest="local_workers",
        help="loopback worker processes to spawn alongside the coordinator",
    )
    p_serve.add_argument(
        "--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT,
        help="seconds before an unanswered shard lease is reassigned",
    )
    _add_resume_arg(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="distributed campaign worker: pull and execute shards",
        description=(
            "Connect to a repro serve / --distributed coordinator, pull "
            "shards, execute them with the same per-run harness "
            "construction as every other executor, and stream the results "
            "back until the coordinator says done."
        ),
    )
    p_worker.add_argument(
        "--connect", type=_hostport, required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    p_worker.add_argument(
        "--processes", type=_positive_int, default=1,
        help="parallel worker processes to run (default 1)",
    )
    p_worker.add_argument(
        "--retry", type=float, default=DEFAULT_CONNECT_RETRY,
        help="seconds to keep retrying the initial connection",
    )
    p_worker.set_defaults(func=cmd_worker)

    return parser


def _add_campaign_axes(parser: argparse.ArgumentParser) -> None:
    """The sweep axes and output options shared by campaign and serve."""
    parser.add_argument("--kind", choices=("ip", "system"), default="ip")
    parser.add_argument(
        "--variant", type=_variant, action="append", dest="variants",
        help="TMU variant; repeatable (default: both)",
    )
    parser.add_argument(
        "--stage", type=_stage, action="append", dest="stages",
        help="injection stage; repeatable (default: the figure's stage list)",
    )
    parser.add_argument(
        "--beats", type=int, default=None,
        help="burst length (default: 8 for ip, 250 for system)",
    )
    parser.add_argument(
        "--seeds", type=_positive_int, default=1,
        help="phase-offset seeds 0..N-1 per (config, stage) point",
    )
    parser.add_argument(
        "--background", type=int, default=0,
        help="background CVA6 transactions (system campaigns)",
    )
    parser.add_argument("--shard-size", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=None,
        help="persist completed shards here; re-runs skip them",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None,
        help="also export the full campaign to this JSON file",
    )
    parser.add_argument(
        "--progress", action="store_true", help="live progress/ETA on stderr"
    )


def _add_batch_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-lanes", type=_positive_int, default=None,
        help="lockstep batch execution: pack up to N same-config seed "
        "lanes and derive followers from one scalar leader run "
        "(byte-identical results; excludes --distributed/--workers > 1)",
    )
    parser.add_argument(
        "--batch-verify", action="store_true",
        help="with --batch-lanes: replay every derived lane on the "
        "scalar verify kernel and fail loudly on any divergence",
    )


def _add_distributed_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--distributed", action="store_true",
        help="serve shards over TCP to repro worker processes instead of "
        "an in-process pool",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="coordinator TCP port (0 = ephemeral; implies --distributed "
        "workers must be told the printed port)",
    )
    parser.add_argument(
        "--bind", default="127.0.0.1",
        help="coordinator bind address (default loopback; 0.0.0.0 admits "
        "LAN workers)",
    )
    parser.add_argument(
        "--local-workers", type=int, default=0,
        help="loopback worker processes the coordinator spawns itself",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT,
        help="seconds before an unanswered shard lease is reassigned",
    )


def _add_resume_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--resume", action="store_true",
        help="resume a previous campaign from --cache-dir: cached shards "
        "are loaded, only missing ones re-execute (requires an existing "
        "cache namespace for this exact spec)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
