"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro area --variant tiny --outstanding 32 --step 32
    python -m repro inject --variant full --stage wlast_bvalid_error
    python -m repro fig7
    python -m repro fig8 --variant tiny
    python -m repro fig11 --workers 4
    python -m repro table2
    python -m repro campaign --kind ip --workers 4 --seeds 2 --progress
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.export import campaign_dict, to_json
from .analysis.report import render_series, render_table
from .area.gf12 import REFERENCE_PRESCALE_STEP
from .area.model import estimate_area, prescaler_saving
from .baselines.features import TABLE2_COLUMNS, table2_profiles
from .faults.campaign import (
    measure_stall_detection_latency,
    run_campaign,
    run_injection,
)
from .faults.types import FIG9_WRITE_STAGES, InjectionStage
from .orchestrate import CampaignSpec, run_campaign_spec
from .soc.experiment import FIG11_LABELS, FIG11_STAGES, run_fig11
from .tmu.budget import AdaptiveBudgetPolicy, PhaseBudgets, SpanBudgets
from .tmu.config import TmuConfig, Variant


def _variant(value: str) -> Variant:
    try:
        return Variant(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"variant must be 'tiny' or 'full', got {value!r}"
        )


def _positive_int(value: str) -> int:
    count = int(value)
    if count <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value!r}")
    return count


def _stage(value: str) -> InjectionStage:
    try:
        return InjectionStage(value)
    except ValueError:
        choices = ", ".join(stage.value for stage in InjectionStage)
        raise argparse.ArgumentTypeError(
            f"unknown stage {value!r}; choose from: {choices}"
        )


def cmd_area(args) -> int:
    report = estimate_area(
        args.variant, args.outstanding, args.step, sticky=not args.no_sticky
    )
    rows = [[name, f"{value:.1f}"] for name, value in report.breakdown().items()]
    print(
        render_table(
            ["component", "um^2"],
            rows,
            title=(
                f"{args.variant.value} TMU, {args.outstanding} outstanding, "
                f"prescale step {args.step} (GF12 model)"
            ),
        )
    )
    return 0


def cmd_inject(args) -> int:
    config = TmuConfig(variant=args.variant)
    stages = args.stages or [InjectionStage.WLAST_TO_BVALID]
    if len(stages) == 1 and (args.workers or 1) <= 1:
        result = run_injection(config, stages[0], beats=args.beats)
        rows = [
            ["detected", result.detected],
            ["latency from injection", result.latency_from_injection],
            ["latency from txn start", result.latency_from_start],
            ["fault kind", result.fault_kind],
            ["attributed phase", result.fault_phase],
            ["recovered", result.recovered],
            ["subordinate resets", result.resets_taken],
        ]
        print(
            render_table(
                ["metric", "value"],
                rows,
                title=f"{stages[0].value} on {args.variant.value}, {args.beats} beats",
            )
        )
        return 0 if result.detected and result.recovered else 1
    # Several stages (or an explicit worker count): run as a campaign.
    results = run_campaign(
        [config], stages, beats=args.beats, workers=args.workers
    )
    rows = [
        [
            result.stage.value,
            result.detected,
            result.latency_from_injection,
            result.latency_from_start,
            result.recovered,
        ]
        for result in results
    ]
    print(
        render_table(
            ["stage", "detected", "lat(inject)", "lat(start)", "recovered"],
            rows,
            title=f"{len(results)} injections on {args.variant.value}, "
            f"{args.beats} beats",
        )
    )
    return 0 if all(r.detected and r.recovered for r in results) else 1


def cmd_fig7(args) -> int:
    capacities = [1, 2, 4, 8, 16, 32, 64, 128]
    series = []
    for variant, label in ((Variant.TINY, "Tc"), (Variant.FULL, "Fc")):
        series.append(
            (label, [estimate_area(variant, n).total_um2 for n in capacities])
        )
        series.append(
            (
                f"{label}+Pre",
                [
                    estimate_area(
                        variant, n, REFERENCE_PRESCALE_STEP, sticky=True
                    ).total_um2
                    for n in capacities
                ],
            )
        )
    print(
        render_series(
            "outstanding",
            capacities,
            series,
            title="Fig. 7: area [um^2] vs outstanding transactions",
        )
    )
    for variant, label in ((Variant.TINY, "Tc"), (Variant.FULL, "Fc")):
        save16 = prescaler_saving(variant, 16) * 100
        save32 = prescaler_saving(variant, 32) * 100
        print(f"{label} prescaler saving @16/32 outstanding: "
              f"{save16:.1f}% / {save32:.1f}%")
    return 0


def cmd_fig8(args) -> int:
    steps = [1, 2, 4, 8, 16, 32, 64, 128]
    budget = args.budget
    budgets = AdaptiveBudgetPolicy(
        PhaseBudgets(aw_handshake=budget), SpanBudgets(base=budget, per_beat=0)
    )
    areas, latencies = [], []
    for step in steps:
        areas.append(
            estimate_area(
                args.variant, 128, step, sticky=True, budget_cycles=budget
            ).total_um2
        )
        config = TmuConfig(
            variant=args.variant,
            max_uniq_ids=4,
            txn_per_id=32,
            prescale_step=step,
            budgets=budgets,
            max_txn_cycles=budget,
        )
        latencies.append(
            measure_stall_detection_latency(config, offsets=range(min(step, 8)))
        )
    print(
        render_series(
            "step",
            steps,
            [("area_um2", areas), ("worst_detect_latency", latencies)],
            title=(
                f"Fig. 8 ({args.variant.value}): 128 outstanding, "
                f"{budget}-cycle budget, total stall"
            ),
        )
    )
    return 0


def cmd_fig11(args) -> int:
    series = run_fig11(workers=args.workers, cache_dir=args.cache_dir)
    rows = []
    for i, label in enumerate(FIG11_LABELS):
        fc = series[Variant.FULL.value][i]
        tc = series[Variant.TINY.value][i]
        rows.append(
            [label, fc.fig11_latency, tc.latency_from_start,
             "ok" if fc.recovered and tc.recovered else "FAILED"]
        )
    print(
        render_table(
            ["stage", "Fc latency", "Tc latency", "recovery"],
            rows,
            title="Fig. 11: system-level detection latency (250-beat frame)",
        )
    )
    return 0


def cmd_campaign(args) -> int:
    variants = args.variants or [Variant.FULL, Variant.TINY]
    if args.kind == "system":
        stages = args.stages or list(FIG11_STAGES)
        spec = CampaignSpec.system(
            variants,
            stages,
            beats=args.beats if args.beats is not None else 250,
            seeds=range(args.seeds),
            background=args.background,
        )
    else:
        stages = args.stages or list(FIG9_WRITE_STAGES)
        spec = CampaignSpec.ip(
            [TmuConfig(variant=variant) for variant in variants],
            stages,
            beats=args.beats if args.beats is not None else 8,
            seeds=range(args.seeds),
        )
    results = run_campaign_spec(
        spec,
        workers=args.workers,
        shard_size=args.shard_size,
        cache_dir=args.cache_dir,
        progress=args.progress,
    )
    rows = [
        [
            run.run_id,
            result.detected,
            result.latency_from_injection,
            result.latency_from_start,
            result.recovered,
        ]
        for run, result in zip(spec.runs(), results)
    ]
    print(
        render_table(
            ["run", "detected", "lat(inject)", "lat(start)", "recovered"],
            rows,
            title=(
                f"{args.kind} campaign: {len(variants)} config(s) x "
                f"{len(stages)} stage(s) x {args.seeds} seed(s)"
            ),
        )
    )
    detected = sum(1 for result in results if result.detected)
    recovered = sum(1 for result in results if result.recovered)
    print(f"{len(results)} runs | {detected} detected | {recovered} recovered")
    if args.json_out:
        with open(args.json_out, "w") as stream:
            stream.write(to_json(campaign_dict(results, spec=spec)))
        print(f"wrote {args.json_out}")
    return 0 if detected == recovered == len(results) else 1


def cmd_table2(args) -> int:
    print(
        render_table(
            TABLE2_COLUMNS,
            [profile.row() for profile in table2_profiles()],
            title="Table II: comparison of AXI transaction monitors",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AXI4 TMU reproduction: run the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_area = sub.add_parser("area", help="GF12 area estimate for a TMU config")
    p_area.add_argument("--variant", type=_variant, default=Variant.TINY)
    p_area.add_argument("--outstanding", type=int, default=32)
    p_area.add_argument("--step", type=int, default=1)
    p_area.add_argument("--no-sticky", action="store_true")
    p_area.set_defaults(func=cmd_area)

    p_inject = sub.add_parser("inject", help="run fault injections")
    p_inject.add_argument("--variant", type=_variant, default=Variant.FULL)
    p_inject.add_argument(
        "--stage",
        type=_stage,
        action="append",
        dest="stages",
        help="injection stage; repeatable (default: wlast_bvalid_error)",
    )
    p_inject.add_argument("--beats", type=int, default=8)
    p_inject.add_argument(
        "--workers", type=int, default=None,
        help="process count for multi-stage sweeps (default: REPRO_WORKERS or 1)",
    )
    p_inject.set_defaults(func=cmd_inject)

    p_fig7 = sub.add_parser("fig7", help="area scaling sweep")
    p_fig7.set_defaults(func=cmd_fig7)

    p_fig8 = sub.add_parser("fig8", help="prescaler area/latency trade-off")
    p_fig8.add_argument("--variant", type=_variant, default=Variant.FULL)
    p_fig8.add_argument("--budget", type=int, default=256)
    p_fig8.set_defaults(func=cmd_fig8)

    p_fig11 = sub.add_parser("fig11", help="system-level latency series")
    p_fig11.add_argument(
        "--workers", type=int, default=None,
        help="shard the sweep over N processes (default: REPRO_WORKERS or 1)",
    )
    p_fig11.add_argument(
        "--cache-dir", default=None,
        help="persist completed shards here; re-runs skip them",
    )
    p_fig11.set_defaults(func=cmd_fig11)

    p_table2 = sub.add_parser("table2", help="monitor comparison matrix")
    p_table2.set_defaults(func=cmd_table2)

    p_campaign = sub.add_parser(
        "campaign", help="sharded fault-injection sweep (configs x stages x seeds)"
    )
    p_campaign.add_argument("--kind", choices=("ip", "system"), default="ip")
    p_campaign.add_argument(
        "--variant", type=_variant, action="append", dest="variants",
        help="TMU variant; repeatable (default: both)",
    )
    p_campaign.add_argument(
        "--stage", type=_stage, action="append", dest="stages",
        help="injection stage; repeatable (default: the figure's stage list)",
    )
    p_campaign.add_argument(
        "--beats", type=int, default=None,
        help="burst length (default: 8 for ip, 250 for system)",
    )
    p_campaign.add_argument(
        "--seeds", type=_positive_int, default=1,
        help="phase-offset seeds 0..N-1 per (config, stage) point",
    )
    p_campaign.add_argument(
        "--background", type=int, default=0,
        help="background CVA6 transactions (system campaigns)",
    )
    p_campaign.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: REPRO_WORKERS or 1)",
    )
    p_campaign.add_argument("--shard-size", type=int, default=1)
    p_campaign.add_argument(
        "--cache-dir", default=None,
        help="persist completed shards here; re-runs skip them",
    )
    p_campaign.add_argument(
        "--json", dest="json_out", default=None,
        help="also export the full campaign to this JSON file",
    )
    p_campaign.add_argument(
        "--progress", action="store_true", help="live progress/ETA on stderr"
    )
    p_campaign.set_defaults(func=cmd_campaign)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
