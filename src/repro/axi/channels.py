"""Beat payload dataclasses for the five AXI4 channels.

Each dataclass is one *flit*: the payload carried by a single handshake
on the corresponding channel.  Fields mirror the AXI4 signal names with
the ``Ax``/``x`` prefix dropped (``AWADDR`` → ``AwBeat.addr``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .types import BurstType, Resp, beats_of, bytes_per_beat


@dataclasses.dataclass(frozen=True)
class AwBeat:
    """Write-address channel payload (AW)."""

    id: int
    addr: int
    len: int = 0
    size: int = 3
    burst: BurstType = BurstType.INCR
    lock: bool = False
    cache: int = 0
    prot: int = 0
    qos: int = 0
    user: int = 0

    @property
    def beats(self) -> int:
        return beats_of(self.len)

    @property
    def bytes_per_beat(self) -> int:
        return bytes_per_beat(self.size)


@dataclasses.dataclass(frozen=True)
class WBeat:
    """Write-data channel payload (W).  AXI4 W channel carries no ID."""

    data: int
    strb: int
    last: bool
    user: int = 0


@dataclasses.dataclass(frozen=True)
class BBeat:
    """Write-response channel payload (B)."""

    id: int
    resp: Resp = Resp.OKAY
    user: int = 0


@dataclasses.dataclass(frozen=True)
class ArBeat:
    """Read-address channel payload (AR)."""

    id: int
    addr: int
    len: int = 0
    size: int = 3
    burst: BurstType = BurstType.INCR
    lock: bool = False
    cache: int = 0
    prot: int = 0
    qos: int = 0
    user: int = 0

    @property
    def beats(self) -> int:
        return beats_of(self.len)

    @property
    def bytes_per_beat(self) -> int:
        return bytes_per_beat(self.size)


@dataclasses.dataclass(frozen=True)
class RBeat:
    """Read-data channel payload (R)."""

    id: int
    data: int
    resp: Resp
    last: bool
    user: int = 0


def remap_id(beat, new_id: int):
    """Return a copy of an ID-carrying beat with its ID replaced.

    Used by the AXI ID remapper; works for AW/AR/B/R beats.
    """
    return dataclasses.replace(beat, id=new_id)


AddressBeat = Optional[object]  # AwBeat | ArBeat; py3.9-compatible alias
