"""N×M AXI4 crossbar with address decode and round-robin arbitration.

Models the Cheshire platform's central interconnect (paper Fig. 10):

* address-decoded routing of AW/AR to subordinate ports, with a DECERR
  default subordinate for unmapped addresses;
* manager-index ID extension so responses route back unambiguously
  (downstream ID = ``manager_index << ID_SHIFT | original ID``);
* per-subordinate W-channel burst locking (AXI4 forbids interleaving
  write data of different bursts);
* round-robin arbitration on every contended port.

Ordering note: a manager issuing same-ID transactions to *different*
subordinates could observe reordered completions; real crossbars stall
that case.  The workloads here (like Cheshire's) give each manager
distinct ID streams per target, so the hazard is not exercised; the
protocol checker still flags it if it ever occurs.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ..sim.component import Component
from .channels import BBeat, RBeat, remap_id
from .interface import AxiInterface
from .types import Resp

#: Bits reserved for the original ID when prepending the manager index.
ID_SHIFT = 16
_ID_MASK = (1 << ID_SHIFT) - 1


def extend_id(manager_index: int, orig_id: int) -> int:
    """Downstream ID carrying the issuing manager's port index."""
    if orig_id > _ID_MASK:
        raise ValueError(f"original ID {orig_id} exceeds {ID_SHIFT} bits")
    return (manager_index << ID_SHIFT) | orig_id


def split_id(extended: int) -> Tuple[int, int]:
    """Inverse of :func:`extend_id`: (manager_index, original ID)."""
    return extended >> ID_SHIFT, extended & _ID_MASK


@dataclasses.dataclass(frozen=True)
class AddressRange:
    """One subordinate's address window."""

    base: int
    size: int

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


#: Route index used for addresses no subordinate claims.
DEFAULT_ROUTE = -1


class Crossbar(Component):
    """AXI4 crossbar connecting manager ports to subordinate ports.

    Parameters
    ----------
    managers:
        Upstream interfaces (managers drive their request channels).
    subordinates:
        ``(interface, address_range)`` pairs for each downstream port.
    """

    def __init__(
        self,
        name: str,
        managers: Sequence[AxiInterface],
        subordinates: Sequence[Tuple[AxiInterface, AddressRange]],
        qos_arbitration: bool = False,
    ) -> None:
        super().__init__(name)
        if not managers or not subordinates:
            raise ValueError("crossbar needs at least one port per side")
        self.qos_arbitration = qos_arbitration
        self.managers = list(managers)
        self.subordinates = [bus for bus, _ in subordinates]
        self.ranges = [rng for _, rng in subordinates]
        n_mgr, n_sub = len(self.managers), len(self.subordinates)

        # Registered routing/arbitration state.
        self._mgr_w_route: List[Deque[int]] = [deque() for _ in range(n_mgr)]
        self._sub_w_owner: List[Deque[int]] = [deque() for _ in range(n_sub)]
        self._aw_rr = [0] * n_sub
        self._ar_rr = [0] * n_sub
        self._b_rr = [0] * n_mgr
        self._r_rr = [0] * n_mgr
        # Default-subordinate (DECERR) bookkeeping.
        self._decerr_b: Deque[int] = deque()  # extended IDs awaiting DECERR B
        self._decerr_r: Deque[int] = deque()
        self._decerr_w_drain = 0
        self.decode_errors = 0
        # Same-ID ordering: outstanding target per (manager, ID, dir).
        # AXI4 requires same-ID responses in request order; the crossbar
        # enforces it by granting a same-ID request only to the target
        # its outstanding predecessors went to.
        self._w_outstanding: Dict[Tuple[int, int], Deque[int]] = {}
        self._r_outstanding: Dict[Tuple[int, int], Deque[int]] = {}

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------
    def route(self, addr: int) -> int:
        for index, rng in enumerate(self.ranges):
            if rng.contains(addr):
                return index
        return DEFAULT_ROUTE

    def wires(self):
        for bus in self.managers:
            yield from bus.wires()
        for bus in self.subordinates:
            yield from bus.wires()

    # ------------------------------------------------------------------
    # Drive: pure combinational forwarding + arbitration
    # ------------------------------------------------------------------
    def _addr_winner(self, channel: str, sub_index: int, rr: int) -> Optional[int]:
        """Pick among managers requesting *sub_index*.

        Round-robin by default; with QoS arbitration the highest AxQOS
        wins and round-robin only breaks ties (AXI4 QoS semantics).
        """
        n_mgr = len(self.managers)
        winner = None
        winner_qos = -1
        for offset in range(n_mgr):
            m = (rr + offset) % n_mgr
            src = getattr(self.managers[m], channel)
            beat = src.payload.value
            if src.valid.value and beat is not None and self.route(beat.addr) == sub_index:
                if not self.qos_arbitration:
                    return m
                if beat.qos > winner_qos:
                    winner = m
                    winner_qos = beat.qos
        return winner

    def drive(self) -> None:
        self._drive_addr("aw")
        self._drive_addr("ar")
        self._drive_w()
        self._drive_resp("b")
        self._drive_resp("r")

    def _w_target_allowed(self, manager_index: int, target: int) -> bool:
        """Write-deadlock avoidance: one W target per manager at a time.

        Granting a manager AWs to two different subordinates while both
        subs' W channels are locked to *other* managers can form a
        circular wait (a classic AXI crossbar deadlock).  The standard
        interconnect rule breaks the cycle: a manager's new AW is only
        granted when its pending W streams all go to the same target.
        """
        route = self._mgr_w_route[manager_index]
        return all(entry == target for entry in route)

    def _same_id_allowed(
        self, channel: str, manager_index: int, txn_id: int, target: int
    ) -> bool:
        """Same-ID ordering: all outstanding same-ID requests of this
        manager must target the same port before a new one is granted."""
        table = self._w_outstanding if channel == "aw" else self._r_outstanding
        queue = table.get((manager_index, txn_id))
        return not queue or queue[0] == target

    def _grant_allowed(self, channel: str, m: int, beat, target: int) -> bool:
        if not self._same_id_allowed(channel, m, beat.id, target):
            return False
        if channel == "aw" and not self._w_target_allowed(m, target):
            return False
        return True

    def _drive_addr(self, channel: str) -> None:
        rr_state = self._aw_rr if channel == "aw" else self._ar_rr
        granted = [False] * len(self.managers)
        for s, sub in enumerate(self.subordinates):
            dst = getattr(sub, channel)
            winner = self._addr_winner(channel, s, rr_state[s])
            if winner is not None:
                beat = getattr(self.managers[winner], channel).payload.value
                if not self._grant_allowed(channel, winner, beat, s):
                    winner = None
            if winner is None:
                dst.idle()
                continue
            src = getattr(self.managers[winner], channel)
            beat = src.payload.value
            dst.drive(remap_id(beat, extend_id(winner, beat.id)))
            src.ready.value = dst.ready.value
            granted[winner] = True
        # Default subordinate: accept unmapped requests (same gating).
        for m, mgr in enumerate(self.managers):
            src = getattr(mgr, channel)
            if granted[m]:
                continue
            beat = src.payload.value
            if (
                src.valid.value
                and beat is not None
                and self.route(beat.addr) == DEFAULT_ROUTE
                and self._grant_allowed(channel, m, beat, DEFAULT_ROUTE)
            ):
                src.ready.value = True
            else:
                src.ready.value = False

    def _drive_w(self) -> None:
        # Forward each subordinate's locked W stream.
        fed_by: List[Optional[int]] = [None] * len(self.managers)
        for s, sub in enumerate(self.subordinates):
            if self._sub_w_owner[s]:
                owner = self._sub_w_owner[s][0]
                route = self._mgr_w_route[owner]
                if route and route[0] == s:
                    fed_by[owner] = s
        for m, mgr in enumerate(self.managers):
            s = fed_by[m]
            if s is not None:
                sub = self.subordinates[s]
                sub.w.valid.value = mgr.w.valid.value
                sub.w.payload.value = mgr.w.payload.value
                mgr.w.ready.value = sub.w.ready.value
            else:
                route = self._mgr_w_route[m]
                if route and route[0] == DEFAULT_ROUTE:
                    mgr.w.ready.value = True  # drain beats of unmapped writes
                else:
                    mgr.w.ready.value = False
        for s, sub in enumerate(self.subordinates):
            if not self._sub_w_owner[s] or fed_by[self._sub_w_owner[s][0]] != s:
                sub.w.idle()

    def _resp_winner(self, channel: str, mgr_index: int, rr: int) -> Optional[int]:
        n_sub = len(self.subordinates)
        for offset in range(n_sub):
            s = (rr + offset) % n_sub
            src = getattr(self.subordinates[s], channel)
            beat = src.payload.value
            if src.valid.value and beat is not None:
                if split_id(beat.id)[0] == mgr_index:
                    return s
        return None

    def _drive_resp(self, channel: str) -> None:
        rr_state = self._b_rr if channel == "b" else self._r_rr
        used_subs: List[Optional[int]] = [None] * len(self.subordinates)
        for m, mgr in enumerate(self.managers):
            dst = getattr(mgr, channel)
            winner = self._resp_winner(channel, m, rr_state[m])
            if winner is not None:
                src = getattr(self.subordinates[winner], channel)
                beat = src.payload.value
                dst.drive(remap_id(beat, split_id(beat.id)[1]))
                src.ready.value = dst.ready.value
                used_subs[winner] = m
                continue
            # DECERR responses for unmapped requests.
            queue = self._decerr_b if channel == "b" else self._decerr_r
            pending = None
            for ext in queue:
                if split_id(ext)[0] == m:
                    pending = ext
                    break
            serviceable = (
                channel == "r" or self._decerr_w_drain_done_for(pending)
            )
            if pending is not None and pending == queue[0] and serviceable:
                orig = split_id(pending)[1]
                if channel == "b":
                    dst.drive(BBeat(id=orig, resp=Resp.DECERR))
                else:
                    dst.drive(RBeat(id=orig, data=0, resp=Resp.DECERR, last=True))
            else:
                dst.idle()
        for s, sub in enumerate(self.subordinates):
            if used_subs[s] is None:
                src = getattr(sub, channel)
                src.ready.value = False

    def _decerr_w_drain_done_for(self, pending: Optional[int]) -> bool:
        # A DECERR B may only go out once the write's W beats are drained.
        return pending is None or self._decerr_w_drain == 0

    # ------------------------------------------------------------------
    # Update: commit arbitration and routing state on fired handshakes
    # ------------------------------------------------------------------
    def update(self) -> None:
        n_mgr = len(self.managers)
        # Managers whose W beat was forwarded to a subordinate this
        # cycle must not also trigger the DECERR drain bookkeeping below
        # (the same handshake fires on both sides of the crossbar).
        w_forwarded = set()
        for s, sub in enumerate(self.subordinates):
            if sub.aw.fired():
                m, orig = split_id(sub.aw.payload.value.id)
                self._sub_w_owner[s].append(m)
                self._mgr_w_route[m].append(s)
                self._w_outstanding.setdefault((m, orig), deque()).append(s)
                self._aw_rr[s] = (m + 1) % n_mgr
            if sub.ar.fired():
                m, orig = split_id(sub.ar.payload.value.id)
                self._r_outstanding.setdefault((m, orig), deque()).append(s)
                self._ar_rr[s] = (m + 1) % n_mgr
            if sub.w.fired():
                owner = self._sub_w_owner[s][0]
                w_forwarded.add(owner)
                if sub.w.payload.value.last:
                    self._sub_w_owner[s].popleft()
                    self._mgr_w_route[owner].popleft()
        for m, mgr in enumerate(self.managers):
            # Unmapped requests accepted this cycle.
            if mgr.aw.fired():
                beat = mgr.aw.payload.value
                if self.route(beat.addr) == DEFAULT_ROUTE:
                    self._decerr_b.append(extend_id(m, beat.id))
                    self._mgr_w_route[m].append(DEFAULT_ROUTE)
                    self._w_outstanding.setdefault((m, beat.id), deque()).append(
                        DEFAULT_ROUTE
                    )
                    self._decerr_w_drain += 1
                    self.decode_errors += 1
            if mgr.ar.fired():
                beat = mgr.ar.payload.value
                if self.route(beat.addr) == DEFAULT_ROUTE:
                    self._decerr_r.append(extend_id(m, beat.id))
                    self._r_outstanding.setdefault((m, beat.id), deque()).append(
                        DEFAULT_ROUTE
                    )
                    self.decode_errors += 1
            if mgr.w.fired() and m not in w_forwarded:
                route = self._mgr_w_route[m]
                if route and route[0] == DEFAULT_ROUTE and mgr.w.payload.value.last:
                    route.popleft()
                    self._decerr_w_drain -= 1
            if mgr.b.fired():
                beat = mgr.b.payload.value
                self._pop_outstanding(self._w_outstanding, m, beat.id)
                if (
                    beat.resp == Resp.DECERR
                    and self._decerr_b
                    and split_id(self._decerr_b[0]) == (m, beat.id)
                ):
                    self._decerr_b.popleft()
                else:
                    self._b_rr[m] = (self._b_rr[m] + 1) % len(self.subordinates)
            if mgr.r.fired():
                beat = mgr.r.payload.value
                if beat.last:
                    self._pop_outstanding(self._r_outstanding, m, beat.id)
                if (
                    beat.resp == Resp.DECERR
                    and self._decerr_r
                    and split_id(self._decerr_r[0]) == (m, beat.id)
                ):
                    self._decerr_r.popleft()
                elif beat.last:
                    self._r_rr[m] = (self._r_rr[m] + 1) % len(self.subordinates)

    @staticmethod
    def _pop_outstanding(table, m: int, txn_id: int) -> None:
        queue = table.get((m, txn_id))
        if queue:
            queue.popleft()
            if not queue:
                del table[(m, txn_id)]

    def reset(self) -> None:
        for queue in self._mgr_w_route + self._sub_w_owner:
            queue.clear()
        self._aw_rr = [0] * len(self.subordinates)
        self._ar_rr = [0] * len(self.subordinates)
        self._b_rr = [0] * len(self.managers)
        self._r_rr = [0] * len(self.managers)
        self._decerr_b.clear()
        self._decerr_r.clear()
        self._decerr_w_drain = 0
        self.decode_errors = 0
        self._w_outstanding.clear()
        self._r_outstanding.clear()
