"""N×M AXI4 crossbar with address decode and round-robin arbitration.

Models the Cheshire platform's central interconnect (paper Fig. 10):

* address-decoded routing of AW/AR to subordinate ports, with a DECERR
  default subordinate for unmapped addresses;
* manager-index ID extension so responses route back unambiguously
  (downstream ID = ``manager_index << ID_SHIFT | original ID``);
* per-subordinate W-channel burst locking (AXI4 forbids interleaving
  write data of different bursts);
* round-robin arbitration on every contended port.

Ordering note: a manager issuing same-ID transactions to *different*
subordinates could observe reordered completions; real crossbars stall
that case.  The workloads here (like Cheshire's) give each manager
distinct ID streams per target, so the hazard is not exercised; the
protocol checker still flags it if it ever occurs.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ..sim.component import Component
from .channels import BBeat, RBeat, remap_id
from .interface import AxiInterface
from .types import Resp

#: Bits reserved for the original ID when prepending the manager index.
ID_SHIFT = 16
_ID_MASK = (1 << ID_SHIFT) - 1


def extend_id(manager_index: int, orig_id: int) -> int:
    """Downstream ID carrying the issuing manager's port index."""
    if orig_id > _ID_MASK:
        raise ValueError(f"original ID {orig_id} exceeds {ID_SHIFT} bits")
    return (manager_index << ID_SHIFT) | orig_id


def split_id(extended: int) -> Tuple[int, int]:
    """Inverse of :func:`extend_id`: (manager_index, original ID)."""
    return extended >> ID_SHIFT, extended & _ID_MASK


@dataclasses.dataclass(frozen=True)
class AddressRange:
    """One subordinate's address window."""

    base: int
    size: int

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class _XbarChannel(Component):
    """Drive-only child covering one AXI channel of the crossbar.

    The crossbar registers one of these per channel (aw/w/b/ar/r) so the
    kernel can re-arbitrate exactly the channels whose inputs moved: a W
    beat streaming through does not re-run address decode, and an idle
    response channel costs nothing.  All state lives in the parent; the
    parent's update() re-schedules every channel when it mutates
    routing/arbitration state.
    """

    demand_driven = True
    phase_period = 1

    def __init__(self, xbar: "Crossbar", channel: str) -> None:
        super().__init__(f"{xbar.name}.{channel}")
        self.xbar = xbar
        self.channel = channel

    def inputs(self):
        xbar, ch = self.xbar, self.channel
        if ch in ("aw", "ar", "w"):
            for src in xbar._mgr_ch[ch]:
                yield from (src.valid, src.payload)
            for dst in xbar._sub_ch[ch]:
                yield dst.ready
        else:
            for src in xbar._sub_ch[ch]:
                yield from (src.valid, src.payload)
            for dst in xbar._mgr_ch[ch]:
                yield dst.ready

    def outputs(self):
        xbar, ch = self.xbar, self.channel
        if ch in ("aw", "ar", "w"):
            for dst in xbar._sub_ch[ch]:
                yield from (dst.valid, dst.payload)
            for src in xbar._mgr_ch[ch]:
                yield src.ready
        else:
            for dst in xbar._mgr_ch[ch]:
                yield from (dst.valid, dst.payload)
            for src in xbar._sub_ch[ch]:
                yield src.ready

    def drive(self) -> None:
        xbar, ch = self.xbar, self.channel
        if ch in ("aw", "ar"):
            xbar._drive_addr(ch)
        elif ch == "w":
            xbar._drive_w()
        else:
            xbar._drive_resp(ch)


#: Route index used for addresses no subordinate claims.
DEFAULT_ROUTE = -1

#: The five AXI4 channels, in request-then-response order.
CHANNELS = ("aw", "ar", "w", "b", "r")


class Crossbar(Component):
    """AXI4 crossbar connecting manager ports to subordinate ports.

    Parameters
    ----------
    managers:
        Upstream interfaces (managers drive their request channels).
    subordinates:
        ``(interface, address_range)`` pairs for each downstream port.
    """

    demand_driven = True
    demand_update = True
    #: Pure arbitration over the channel wires — translation invariant.
    phase_period = 1

    def __init__(
        self,
        name: str,
        managers: Sequence[AxiInterface],
        subordinates: Sequence[Tuple[AxiInterface, AddressRange]],
        qos_arbitration: bool = False,
    ) -> None:
        super().__init__(name)
        if not managers or not subordinates:
            raise ValueError("crossbar needs at least one port per side")
        self.qos_arbitration = qos_arbitration
        self.managers = list(managers)
        self.subordinates = [bus for bus, _ in subordinates]
        self.ranges = [rng for _, rng in subordinates]
        n_mgr, n_sub = len(self.managers), len(self.subordinates)

        # Per-channel wire bundles, precomputed for the hot arbitration
        # loops and the per-channel scheduling children.
        self._mgr_ch = {
            ch: [getattr(bus, ch) for bus in self.managers] for ch in CHANNELS
        }
        self._sub_ch = {
            ch: [getattr(bus, ch) for bus in self.subordinates] for ch in CHANNELS
        }
        self._channels = [_XbarChannel(self, ch) for ch in CHANNELS]
        # update() commits state only on fired handshakes; these
        # channel pairs gate its quiescence and their valid/ready wires
        # wake it.  Watching the readys too lets the crossbar sleep
        # through a held-valid (deaf endpoint) stall — the only event
        # that can complete such a handshake is its ready rising.
        self._watch_channels = [
            ch
            for group in (self._mgr_ch, self._sub_ch)
            for channels in group.values()
            for ch in channels
        ]

        # Registered routing/arbitration state.
        self._mgr_w_route: List[Deque[int]] = [deque() for _ in range(n_mgr)]
        self._sub_w_owner: List[Deque[int]] = [deque() for _ in range(n_sub)]
        self._aw_rr = [0] * n_sub
        self._ar_rr = [0] * n_sub
        self._b_rr = [0] * n_mgr
        self._r_rr = [0] * n_mgr
        # Default-subordinate (DECERR) bookkeeping.
        self._decerr_b: Deque[int] = deque()  # extended IDs awaiting DECERR B
        self._decerr_r: Deque[int] = deque()
        self._decerr_w_drain = 0
        self.decode_errors = 0
        # Same-ID ordering: outstanding target per (manager, ID, dir).
        # AXI4 requires same-ID responses in request order; the crossbar
        # enforces it by granting a same-ID request only to the target
        # its outstanding predecessors went to.
        self._w_outstanding: Dict[Tuple[int, int], Deque[int]] = {}
        self._r_outstanding: Dict[Tuple[int, int], Deque[int]] = {}

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------
    def route(self, addr: int) -> int:
        for index, rng in enumerate(self.ranges):
            if rng.contains(addr):
                return index
        return DEFAULT_ROUTE

    def wires(self):
        for bus in self.managers:
            yield from bus.wires()
        for bus in self.subordinates:
            yield from bus.wires()

    def children(self):
        return self._channels

    def inputs(self):
        # Wire sensitivity lives on the per-channel children; the parent
        # keeps a whole-crossbar drive() only for one-shot seeding and
        # standalone use, and must not re-trigger on every wire change.
        return ()

    def outputs(self):
        for child in self._channels:
            yield from child.outputs()

    def update_inputs(self):
        return [
            wire
            for ch in self._watch_channels
            for wire in (ch.valid, ch.ready)
        ]

    def quiescent(self):
        # Routing and arbitration state move only on fired handshakes;
        # while no channel holds valid & ready nothing can fire next
        # edge, whatever the DECERR queues or round-robin pointers
        # currently hold — and any change that could complete a
        # handshake passes through a watched wire first.
        return not any(
            ch.valid._value and ch.ready._value for ch in self._watch_channels
        )

    def snapshot_state(self):
        return (
            tuple(tuple(queue) for queue in self._mgr_w_route),
            tuple(tuple(queue) for queue in self._sub_w_owner),
            tuple(self._aw_rr),
            tuple(self._ar_rr),
            tuple(self._b_rr),
            tuple(self._r_rr),
            tuple(self._decerr_b),
            tuple(self._decerr_r),
            self._decerr_w_drain,
            self.decode_errors,
            tuple(sorted(
                (key, tuple(queue)) for key, queue in self._w_outstanding.items()
            )),
            tuple(sorted(
                (key, tuple(queue)) for key, queue in self._r_outstanding.items()
            )),
        )

    def _schedule_channels(self) -> None:
        """Invalidate every per-channel drive after a routing-state change.

        Conservative on purpose: the channels share the parent's
        arbitration state (W routing follows AW grants, response
        round-robin follows completions), so any committed handshake
        re-schedules all five.  Wire-level sensitivity still keeps idle
        channels from re-running in steady state.
        """
        for child in self._channels:
            child.schedule_drive()

    # ------------------------------------------------------------------
    # Drive: pure combinational forwarding + arbitration
    # ------------------------------------------------------------------
    def _addr_winner(self, channel: str, sub_index: int, rr: int) -> Optional[int]:
        """Pick among managers requesting *sub_index*.

        Round-robin by default; with QoS arbitration the highest AxQOS
        wins and round-robin only breaks ties (AXI4 QoS semantics).
        """
        sources = self._mgr_ch[channel]
        n_mgr = len(sources)
        winner = None
        winner_qos = -1
        for offset in range(n_mgr):
            m = (rr + offset) % n_mgr
            src = sources[m]
            beat = src.payload.value
            if src.valid.value and beat is not None and self.route(beat.addr) == sub_index:
                if not self.qos_arbitration:
                    return m
                if beat.qos > winner_qos:
                    winner = m
                    winner_qos = beat.qos
        return winner

    def drive(self) -> None:
        self._drive_addr("aw")
        self._drive_addr("ar")
        self._drive_w()
        self._drive_resp("b")
        self._drive_resp("r")

    def _w_target_allowed(self, manager_index: int, target: int) -> bool:
        """Write-deadlock avoidance: one W target per manager at a time.

        Granting a manager AWs to two different subordinates while both
        subs' W channels are locked to *other* managers can form a
        circular wait (a classic AXI crossbar deadlock).  The standard
        interconnect rule breaks the cycle: a manager's new AW is only
        granted when its pending W streams all go to the same target.
        """
        route = self._mgr_w_route[manager_index]
        return all(entry == target for entry in route)

    def _same_id_allowed(
        self, channel: str, manager_index: int, txn_id: int, target: int
    ) -> bool:
        """Same-ID ordering: all outstanding same-ID requests of this
        manager must target the same port before a new one is granted."""
        table = self._w_outstanding if channel == "aw" else self._r_outstanding
        queue = table.get((manager_index, txn_id))
        return not queue or queue[0] == target

    def _grant_allowed(self, channel: str, m: int, beat, target: int) -> bool:
        if not self._same_id_allowed(channel, m, beat.id, target):
            return False
        if channel == "aw" and not self._w_target_allowed(m, target):
            return False
        return True

    def _drive_addr(self, channel: str) -> None:
        rr_state = self._aw_rr if channel == "aw" else self._ar_rr
        sources = self._mgr_ch[channel]
        granted = [False] * len(sources)
        for s, dst in enumerate(self._sub_ch[channel]):
            winner = self._addr_winner(channel, s, rr_state[s])
            if winner is not None:
                beat = sources[winner].payload.value
                if not self._grant_allowed(channel, winner, beat, s):
                    winner = None
            if winner is None:
                dst.idle()
                continue
            src = sources[winner]
            beat = src.payload.value
            dst.drive(remap_id(beat, extend_id(winner, beat.id)))
            src.ready.value = dst.ready.value
            granted[winner] = True
        # Default subordinate: accept unmapped requests (same gating).
        for m, src in enumerate(sources):
            if granted[m]:
                continue
            beat = src.payload.value
            if (
                src.valid.value
                and beat is not None
                and self.route(beat.addr) == DEFAULT_ROUTE
                and self._grant_allowed(channel, m, beat, DEFAULT_ROUTE)
            ):
                src.ready.value = True
            else:
                src.ready.value = False

    def _drive_w(self) -> None:
        # Forward each subordinate's locked W stream.
        fed_by: List[Optional[int]] = [None] * len(self.managers)
        for s, sub in enumerate(self.subordinates):
            if self._sub_w_owner[s]:
                owner = self._sub_w_owner[s][0]
                route = self._mgr_w_route[owner]
                if route and route[0] == s:
                    fed_by[owner] = s
        for m, mgr in enumerate(self.managers):
            s = fed_by[m]
            if s is not None:
                sub = self.subordinates[s]
                sub.w.valid.value = mgr.w.valid.value
                sub.w.payload.value = mgr.w.payload.value
                mgr.w.ready.value = sub.w.ready.value
            else:
                route = self._mgr_w_route[m]
                if route and route[0] == DEFAULT_ROUTE:
                    mgr.w.ready.value = True  # drain beats of unmapped writes
                else:
                    mgr.w.ready.value = False
        for s, sub in enumerate(self.subordinates):
            if not self._sub_w_owner[s] or fed_by[self._sub_w_owner[s][0]] != s:
                sub.w.idle()

    def _resp_winner(self, channel: str, mgr_index: int, rr: int) -> Optional[int]:
        sources = self._sub_ch[channel]
        n_sub = len(sources)
        for offset in range(n_sub):
            s = (rr + offset) % n_sub
            src = sources[s]
            beat = src.payload.value
            if src.valid.value and beat is not None:
                if split_id(beat.id)[0] == mgr_index:
                    return s
        return None

    def _drive_resp(self, channel: str) -> None:
        rr_state = self._b_rr if channel == "b" else self._r_rr
        sources = self._sub_ch[channel]
        used_subs: List[Optional[int]] = [None] * len(sources)
        for m, dst in enumerate(self._mgr_ch[channel]):
            winner = self._resp_winner(channel, m, rr_state[m])
            if winner is not None:
                src = sources[winner]
                beat = src.payload.value
                dst.drive(remap_id(beat, split_id(beat.id)[1]))
                src.ready.value = dst.ready.value
                used_subs[winner] = m
                continue
            # DECERR responses for unmapped requests.
            queue = self._decerr_b if channel == "b" else self._decerr_r
            pending = None
            for ext in queue:
                if split_id(ext)[0] == m:
                    pending = ext
                    break
            serviceable = (
                channel == "r" or self._decerr_w_drain_done_for(pending)
            )
            if pending is not None and pending == queue[0] and serviceable:
                orig = split_id(pending)[1]
                if channel == "b":
                    dst.drive(BBeat(id=orig, resp=Resp.DECERR))
                else:
                    dst.drive(RBeat(id=orig, data=0, resp=Resp.DECERR, last=True))
            else:
                dst.idle()
        for s, src in enumerate(sources):
            if used_subs[s] is None:
                src.ready.value = False

    def _decerr_w_drain_done_for(self, pending: Optional[int]) -> bool:
        # A DECERR B may only go out once the write's W beats are drained.
        return pending is None or self._decerr_w_drain == 0

    # ------------------------------------------------------------------
    # Update: commit arbitration and routing state on fired handshakes
    # ------------------------------------------------------------------
    def update(self) -> None:
        # Clock-edge code: wire reads go straight to the slots (no
        # drive-phase tracing needed), mirroring Channel.fired().
        n_mgr = len(self.managers)
        changed = False
        # Managers whose W beat was forwarded to a subordinate this
        # cycle must not also trigger the DECERR drain bookkeeping below
        # (the same handshake fires on both sides of the crossbar).
        w_forwarded = set()
        for s, sub in enumerate(self.subordinates):
            if (sub.aw.valid._value and sub.aw.ready._value):
                m, orig = split_id(sub.aw.payload._value.id)
                self._sub_w_owner[s].append(m)
                self._mgr_w_route[m].append(s)
                self._w_outstanding.setdefault((m, orig), deque()).append(s)
                self._aw_rr[s] = (m + 1) % n_mgr
                changed = True
            if (sub.ar.valid._value and sub.ar.ready._value):
                m, orig = split_id(sub.ar.payload._value.id)
                self._r_outstanding.setdefault((m, orig), deque()).append(s)
                self._ar_rr[s] = (m + 1) % n_mgr
                changed = True
            if (sub.w.valid._value and sub.w.ready._value):
                owner = self._sub_w_owner[s][0]
                w_forwarded.add(owner)
                if sub.w.payload._value.last:
                    # Mid-burst beats commit nothing; only the last beat
                    # moves routing state.
                    self._sub_w_owner[s].popleft()
                    self._mgr_w_route[owner].popleft()
                    changed = True
        for m, mgr in enumerate(self.managers):
            # Unmapped requests accepted this cycle.
            if (mgr.aw.valid._value and mgr.aw.ready._value):
                beat = mgr.aw.payload._value
                if self.route(beat.addr) == DEFAULT_ROUTE:
                    self._decerr_b.append(extend_id(m, beat.id))
                    self._mgr_w_route[m].append(DEFAULT_ROUTE)
                    self._w_outstanding.setdefault((m, beat.id), deque()).append(
                        DEFAULT_ROUTE
                    )
                    self._decerr_w_drain += 1
                    self.decode_errors += 1
                    changed = True
            if (mgr.ar.valid._value and mgr.ar.ready._value):
                beat = mgr.ar.payload._value
                if self.route(beat.addr) == DEFAULT_ROUTE:
                    self._decerr_r.append(extend_id(m, beat.id))
                    self._r_outstanding.setdefault((m, beat.id), deque()).append(
                        DEFAULT_ROUTE
                    )
                    self.decode_errors += 1
                    changed = True
            if (mgr.w.valid._value and mgr.w.ready._value) and m not in w_forwarded:
                route = self._mgr_w_route[m]
                if route and route[0] == DEFAULT_ROUTE and mgr.w.payload._value.last:
                    route.popleft()
                    self._decerr_w_drain -= 1
                    changed = True
            if (mgr.b.valid._value and mgr.b.ready._value):
                beat = mgr.b.payload._value
                self._pop_outstanding(self._w_outstanding, m, beat.id)
                if (
                    beat.resp == Resp.DECERR
                    and self._decerr_b
                    and split_id(self._decerr_b[0]) == (m, beat.id)
                ):
                    self._decerr_b.popleft()
                else:
                    self._b_rr[m] = (self._b_rr[m] + 1) % len(self.subordinates)
                changed = True
            if (mgr.r.valid._value and mgr.r.ready._value):
                beat = mgr.r.payload._value
                if beat.last:
                    self._pop_outstanding(self._r_outstanding, m, beat.id)
                    changed = True
                if (
                    beat.resp == Resp.DECERR
                    and self._decerr_r
                    and split_id(self._decerr_r[0]) == (m, beat.id)
                ):
                    self._decerr_r.popleft()
                    changed = True
                elif beat.last:
                    self._r_rr[m] = (self._r_rr[m] + 1) % len(self.subordinates)
        if changed:
            self._schedule_channels()

    @staticmethod
    def _pop_outstanding(table, m: int, txn_id: int) -> None:
        queue = table.get((m, txn_id))
        if queue:
            queue.popleft()
            if not queue:
                del table[(m, txn_id)]

    def reset(self) -> None:
        for queue in self._mgr_w_route + self._sub_w_owner:
            queue.clear()
        self._aw_rr = [0] * len(self.subordinates)
        self._ar_rr = [0] * len(self.subordinates)
        self._b_rr = [0] * len(self.managers)
        self._r_rr = [0] * len(self.managers)
        self._decerr_b.clear()
        self._decerr_r.clear()
        self._decerr_w_drain = 0
        self.decode_errors = 0
        self._w_outstanding.clear()
        self._r_outstanding.clear()
        self._schedule_channels()
        self.schedule_update()
