"""Memory-backed AXI4 subordinate with latency knobs and fault hooks.

The subordinate models a generic endpoint (memory controller, peripheral)
with configurable handshake delays and response latencies.  A mutable
:class:`SubordinateFaults` block lets fault-injection campaigns make the
device misbehave in exactly the ways the paper's Fig. 9 enumerates —
going deaf on a request channel, going mute on a response channel,
corrupting response IDs, dropping ``last``, or emitting unrequested
responses.  A hardware reset input (driven by the external reset unit)
clears internal state and, by default, the fault block — modelling the
paper's recovery path.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Optional

from ..sim.component import Component, DriveSensitiveState
from ..sim.signal import Wire
from .channels import ArBeat, AwBeat, BBeat, RBeat
from .interface import AxiInterface
from .memory import SparseMemory
from .types import Resp, beat_lane, burst_addresses, bytes_per_beat


@dataclasses.dataclass
class SubordinateFaults(DriveSensitiveState):
    """Mutable fault switches, toggled by injectors mid-simulation.

    Each flag corresponds to an error class from the paper's
    fault-injection campaign (§III-A3):

    * ``deaf_aw`` — AW Stage Error: missing ``aw_ready`` acknowledgment.
    * ``deaf_w`` — W Datapath Error: ``w_ready`` failure during transfer.
    * ``deaf_ar`` — AR stage error (read-side mirror of ``deaf_aw``).
    * ``mute_b`` — ``w_last``-to-``b_valid`` error: response never comes.
    * ``mute_r`` — R channel goes silent (mid-burst stall).
    * ``corrupt_b_id`` / ``corrupt_r_id`` — ID mismatch on B / R.
    * ``drop_r_last`` — final R beat arrives without ``last``.
    * ``spurious_b`` / ``spurious_r`` — unrequested response with that ID.
    * ``error_resp`` — respond with SLVERR instead of OKAY.
    * ``reorder_same_id`` — the reorder window ignores the same-ID
      ordering constraint, illegally interleaving R beats of two
      transactions that share an ID (the dark-corner fault the
      interleaving-legality rules exist to catch).

    Injectors flip these switches mid-simulation, between cycles; the
    :class:`DriveSensitiveState` base notifies the owning subordinate.
    """

    deaf_aw: bool = False
    deaf_w: bool = False
    deaf_ar: bool = False
    mute_b: bool = False
    mute_r: bool = False
    corrupt_b_id: Optional[int] = None
    corrupt_r_id: Optional[int] = None
    drop_r_last: bool = False
    spurious_b: Optional[int] = None
    spurious_r: Optional[int] = None
    error_resp: bool = False
    reorder_same_id: bool = False

    def clear(self) -> None:
        self.deaf_aw = False
        self.deaf_w = False
        self.deaf_ar = False
        self.mute_b = False
        self.mute_r = False
        self.corrupt_b_id = None
        self.corrupt_r_id = None
        self.drop_r_last = False
        self.spurious_b = None
        self.spurious_r = None
        self.error_resp = False
        self.reorder_same_id = False

    @property
    def any_active(self) -> bool:
        return any(
            (
                self.deaf_aw,
                self.deaf_w,
                self.deaf_ar,
                self.mute_b,
                self.mute_r,
                self.corrupt_b_id is not None,
                self.corrupt_r_id is not None,
                self.drop_r_last,
                self.spurious_b is not None,
                self.spurious_r is not None,
                self.error_resp,
                self.reorder_same_id,
            )
        )


@dataclasses.dataclass
class _WriteJob:
    aw: AwBeat
    addrs: List[int]
    index: int = 0
    w_wait: int = 0


@dataclasses.dataclass
class _ReadJob:
    ar: ArBeat
    addrs: List[int]
    index: int = 0
    countdown: int = 0
    gap: int = 0


class Subordinate(Component):
    """Generic memory-backed AXI4 subordinate.

    Parameters
    ----------
    bus:
        Interface whose response channels this subordinate sources.
    memory:
        Backing store; a private :class:`SparseMemory` if omitted.
    aw_ready_delay / ar_ready_delay:
        Cycles of ``valid`` observed before asserting address ``ready``.
    w_ready_delay:
        Per-beat delay before accepting each W beat.
    b_latency:
        Cycles from the last W beat to ``b_valid``.
    r_latency:
        Cycles from AR acceptance to the first R beat.
    r_gap:
        Idle cycles between consecutive R beats.
    max_outstanding:
        Accepted-but-unfinished transaction cap per direction.
    reset_clears_faults:
        Whether a hardware reset repairs the fault block (the paper's
        recovery model).
    interleave_reads:
        Serve R beats round-robin across outstanding reads of
        *different* IDs (AXI4 permits interleaving read data between
        transactions with different IDs; same-ID order is preserved).
        Equivalent to an unbounded ``reorder_depth`` on the read side.
    reorder_depth:
        Size of the response reorder window.  ``0``/``1`` preserve the
        strict in-order legacy behaviour.  With depth ``k`` the
        subordinate may serve any of the first ``k`` outstanding
        responses per direction — interleaving R beats across IDs and
        reordering B responses — while still completing same-ID
        transactions in order, exactly the latitude AXI4 grants.
    """

    demand_driven = True
    demand_update = True
    #: Purely reactive: latency chains count from the request's
    #: arrival, never from absolute cycle numbers.
    phase_period = 1

    def __init__(
        self,
        name: str,
        bus: AxiInterface,
        memory: Optional[SparseMemory] = None,
        aw_ready_delay: int = 0,
        w_ready_delay: int = 0,
        b_latency: int = 1,
        ar_ready_delay: int = 0,
        r_latency: int = 1,
        r_gap: int = 0,
        max_outstanding: int = 64,
        reset_clears_faults: bool = True,
        interleave_reads: bool = False,
        reorder_depth: int = 0,
    ) -> None:
        super().__init__(name)
        self.bus = bus
        self.memory = memory if memory is not None else SparseMemory()
        # R data is read combinationally from memory; external stores
        # (testbench preloads, shared memories) must re-drive us.
        self.memory.watch(self.schedule_drive)
        self.aw_ready_delay = aw_ready_delay
        self.w_ready_delay = w_ready_delay
        self.b_latency = b_latency
        self.ar_ready_delay = ar_ready_delay
        self.r_latency = r_latency
        self.r_gap = r_gap
        self.max_outstanding = max_outstanding
        self.reset_clears_faults = reset_clears_faults
        self.interleave_reads = interleave_reads
        self.reorder_depth = reorder_depth
        self._r_rr = 0
        self._b_rr = 0

        self.faults = SubordinateFaults()
        self.faults._owner = self
        #: hardware reset request input, driven by an external reset unit.
        self.hw_reset = Wire(f"{name}.hw_reset", False)

        self._aw_wait = 0
        self._ar_wait = 0
        self._writes: Deque[_WriteJob] = deque()
        self._b_queue: Deque[List[int]] = deque()  # [id, countdown]
        self._reads: Deque[_ReadJob] = deque()
        self._in_reset = False
        self.resets_taken = 0
        self.writes_done = 0
        self.reads_done = 0
        # Stamp of the last accounted update.  Every per-cycle counter
        # (the ready-delay polls, the b/r latency countdowns) advances
        # by `elapsed = now - _stamp` in update(), so a slept span is
        # reconstructed exactly — always-on operation has elapsed == 1
        # and is bit-identical to the historical per-cycle ticks.
        self._stamp = 0

    # ------------------------------------------------------------------
    # Component protocol
    # ------------------------------------------------------------------
    def wires(self):
        yield from self.bus.wires()
        yield self.hw_reset

    def inputs(self):
        # drive() computes readiness and responses purely from registered
        # state and the fault block; the only wire it reads is hw_reset.
        return (self.hw_reset,)

    def outputs(self):
        bus = self.bus
        return (
            bus.aw.ready, bus.w.ready, bus.ar.ready,
            bus.b.valid, bus.b.payload,
            bus.r.valid, bus.r.payload,
        )

    def update_inputs(self):
        # Inbound requests, the ready edges that can complete a stalled
        # response handshake, and the hardware reset end quiescence;
        # fault flips arrive through DriveSensitiveState.
        bus = self.bus
        return (
            bus.aw.valid, bus.ar.valid, bus.w.valid,
            bus.b.ready, bus.r.ready, self.hw_reset,
        )

    def quiescent(self):
        # Sleep whenever no handshake can fire next edge and every
        # running counter is a pure countdown whose next *visible*
        # transition is declared as a timed wake:
        #
        # * a held-but-deaf request channel (or one parked behind a
        #   full window) just increments its poll counter — elapsed
        #   accounting reconstructs it on wake;
        # * a poll counter ramping toward its ready-delay threshold
        #   wakes exactly at the crossing, so the ready wire still
        #   rises on schedule;
        # * b/r latency countdowns wake the cycle they reach zero (the
        #   update that raises valid next settle); while a mute fault
        #   parks the channel they tick silently and need no wake.
        #
        # Anything that could change the picture — a valid/ready edge,
        # the hardware reset, a fault flip — arrives through a watched
        # wire or DriveSensitiveState and wakes us first.
        bus, faults = self.bus, self.faults
        if self.hw_reset._value:
            # Held in reset: update() returns immediately until release.
            return self._in_reset
        if self._in_reset:
            return False
        now = self._stamp
        wake: Optional[int] = None

        # AW / AR: fire imminent when a held valid meets next-settle
        # readiness (computed from state — the wire may lag a cycle).
        aw_open = not faults.deaf_aw and self._write_capacity()
        if bus.aw.valid._value and aw_open:
            if self._aw_wait >= self.aw_ready_delay:
                return False
            wake = now + (self.aw_ready_delay - self._aw_wait)
        ar_open = not faults.deaf_ar and len(self._reads) < self.max_outstanding
        if bus.ar.valid._value and ar_open:
            if self._ar_wait >= self.ar_ready_delay:
                return False
            crossing = now + (self.ar_ready_delay - self._ar_wait)
            if wake is None or crossing < wake:
                wake = crossing
        # W: the head job's per-beat ready delay ramps regardless of
        # w_valid; its crossing is drive-visible (w_ready rises).
        if self._writes and not faults.deaf_w:
            w_wait = self._writes[0].w_wait
            if w_wait >= self.w_ready_delay:
                if bus.w.valid._value:
                    return False
            else:
                crossing = now + (self.w_ready_delay - w_wait)
                if wake is None or crossing < wake:
                    wake = crossing
        # B: a still-counting head wakes at zero (the update that raises
        # b_valid next settle); a response already held on a stalled
        # channel sleeps until the far ready rises; an unparked response
        # whose valid is rising — or whose handshake can complete — must
        # stay awake.  Muted queues tick silently.
        if faults.spurious_b is not None and bus.b.ready._value:
            return False
        if self._b_queue and not faults.mute_b and faults.spurious_b is None:
            if self._b_window() <= 1:
                # Serial ticking: only the head countdown is a real
                # wall-clock crossing (entries behind tick after it).
                head_countdown = self._b_queue[0][1]
                if head_countdown > 0:
                    if wake is None or now + head_countdown < wake:
                        wake = now + head_countdown
                elif not bus.b.valid._value or bus.b.ready._value:
                    return False
            else:
                # Parallel ticking: any in-window entry maturing can
                # change the selection, so each crossing arms a wake.
                window = self._b_window()
                for position, entry in enumerate(self._b_queue):
                    if position >= window:
                        break
                    if entry[1] > 0 and (wake is None or now + entry[1] < wake):
                        wake = now + entry[1]
                if self._select_b_entry() is not None and (
                    not bus.b.valid._value or bus.b.ready._value
                ):
                    return False
        # R: mirror of B over the parallel per-job countdown/gap chains.
        # Every still-counting chain arms a wake — a crossing can change
        # which job _select_r_job() picks (and hence the driven beat),
        # so it must be observed at its exact cycle even while the
        # channel is stalled.
        if faults.spurious_r is not None and bus.r.ready._value:
            return False
        if self._reads and not faults.mute_r and faults.spurious_r is None:
            for job in self._reads:
                chain = job.countdown + job.gap
                if chain > 0 and (wake is None or now + chain < wake):
                    wake = now + chain
            if self._select_r_job() is not None and (
                not bus.r.valid._value or bus.r.ready._value
            ):
                return False
        if wake is not None:
            if wake <= now:
                return False
            if self._sim is not None:
                # `now` is this update's stamp (sim.cycle + 1); the
                # event update stamped `wake` runs in the step at
                # wake - 1 == sim.cycle + (wake - now).
                self.wake_at(self._sim.cycle + (wake - now))
        return True

    def snapshot_state(self):
        # The poll counters and latency countdowns are clock-derived
        # under the timed-wake contract (they advance by `elapsed` and
        # are replayed exactly), so only their *structural* state — the
        # queues, indices and completion counts whose movement needs a
        # handshake — is snapshotted for verify-strategy diffs.
        return (
            tuple(job.index for job in self._writes),
            tuple(entry[0] for entry in self._b_queue),
            tuple((job.ar.id, job.index) for job in self._reads),
            self._r_rr,
            self._b_rr,
            self._in_reset,
            self.resets_taken,
            self.writes_done,
            self.reads_done,
        )

    def _write_capacity(self) -> bool:
        return len(self._writes) + len(self._b_queue) < self.max_outstanding

    def drive(self) -> None:
        bus = self.bus
        if self.hw_reset.value:
            bus.aw.ready.value = False
            bus.w.ready.value = False
            bus.ar.ready.value = False
            bus.b.idle()
            bus.r.idle()
            return

        faults = self.faults
        bus.aw.ready.value = (
            not faults.deaf_aw
            and self._write_capacity()
            and self._aw_wait >= self.aw_ready_delay
        )
        bus.ar.ready.value = (
            not faults.deaf_ar
            and len(self._reads) < self.max_outstanding
            and self._ar_wait >= self.ar_ready_delay
        )
        job = self._writes[0] if self._writes else None
        bus.w.ready.value = (
            job is not None
            and not faults.deaf_w
            and job.w_wait >= self.w_ready_delay
        )
        self._drive_b()
        self._drive_r()

    def _drive_b(self) -> None:
        bus, faults = self.bus, self.faults
        if faults.spurious_b is not None:
            bus.b.drive(BBeat(id=faults.spurious_b, resp=Resp.OKAY))
            return
        entry = self._select_b_entry() if not faults.mute_b else None
        if entry is None:
            bus.b.idle()
            return
        txn_id = entry[0]
        if faults.corrupt_b_id is not None:
            txn_id = faults.corrupt_b_id
        resp = Resp.SLVERR if faults.error_resp else Resp.OKAY
        bus.b.drive(BBeat(id=txn_id, resp=resp))

    def _r_window(self) -> int:
        """Read-side reorder window size (``interleave_reads`` = unbounded)."""
        if self.interleave_reads:
            return len(self._reads)
        return max(1, self.reorder_depth)

    def _b_window(self) -> int:
        """Write-response reorder window size."""
        return max(1, self.reorder_depth)

    def _select_r_job(self) -> Optional[_ReadJob]:
        """Deterministic choice of the read job to serve this cycle.

        Pure function of registered state, so drive() and update() can
        both call it and agree.  With a window of one the oldest job is
        served; otherwise the round-robin pointer picks among the heads
        of each ID's in-order stream within the window (every job when
        the ``reorder_same_id`` fault erases the same-ID constraint).
        """
        if not self._reads:
            return None
        window = self._r_window()
        if window <= 1:
            job = self._reads[0]
            return job if job.countdown == 0 and job.gap == 0 else None
        heads = []
        seen_ids = set()
        for position, job in enumerate(self._reads):
            if position >= window:
                break
            if job.ar.id in seen_ids and not self.faults.reorder_same_id:
                continue  # same-ID reads stay in order
            seen_ids.add(job.ar.id)
            if job.countdown == 0 and job.gap == 0:
                heads.append(job)
        if not heads:
            return None
        return heads[self._r_rr % len(heads)]

    def _select_b_entry(self) -> Optional[List[int]]:
        """Deterministic choice of the B response to present this cycle.

        Mirror of :meth:`_select_r_job` over the write-response queue:
        within the reorder window any matured response whose ID has no
        older sibling still queued may complete; same-ID responses keep
        AW order (unless the ``reorder_same_id`` fault erases it).
        """
        if not self._b_queue:
            return None
        window = self._b_window()
        if window <= 1:
            entry = self._b_queue[0]
            return entry if entry[1] <= 0 else None
        candidates = []
        seen_ids = set()
        for position, entry in enumerate(self._b_queue):
            if position >= window:
                break
            if entry[0] in seen_ids and not self.faults.reorder_same_id:
                continue  # same-ID responses keep AW order
            seen_ids.add(entry[0])
            if entry[1] <= 0:
                candidates.append(entry)
        if not candidates:
            return None
        return candidates[self._b_rr % len(candidates)]

    def _drive_r(self) -> None:
        bus, faults = self.bus, self.faults
        if faults.spurious_r is not None:
            bus.r.drive(
                RBeat(id=faults.spurious_r, data=0, resp=Resp.OKAY, last=True)
            )
            return
        job = self._select_r_job()
        if faults.mute_r or job is None:
            bus.r.idle()
            return
        width = bytes_per_beat(job.ar.size)
        addr = job.addrs[job.index]
        data = self.memory.read_word(addr, width)
        if width < self.bus.data_bytes:
            # Narrow beat: place the data on the addressed byte lanes.
            data <<= 8 * beat_lane(addr, self.bus.data_bytes)
        is_last = job.index == len(job.addrs) - 1
        txn_id = job.ar.id
        if faults.corrupt_r_id is not None:
            txn_id = faults.corrupt_r_id
        if faults.drop_r_last:
            is_last = False
        resp = Resp.SLVERR if faults.error_resp else Resp.OKAY
        bus.r.drive(RBeat(id=txn_id, data=data, resp=resp, last=is_last))

    def update(self) -> None:
        # Clock-edge code: wire reads go straight to the slots (no
        # drive-phase tracing needed), mirroring Channel.fired().
        bus = self.bus
        aw, ar, w, b, r = bus.aw, bus.ar, bus.w, bus.b, bus.r
        sim = self._sim
        now = sim.cycle + 1 if sim is not None else self._stamp + 1
        if self.hw_reset._value:
            if not self._in_reset:
                self._take_reset()
                self.resets_taken += 1
                self._in_reset = True
                self.schedule_drive()
            self._stamp = now  # reset cycles tick nothing
            return
        elapsed = now - self._stamp
        self._stamp = now
        if self._in_reset:
            self._in_reset = False
            self.schedule_drive()
            elapsed = 1  # the slept reset span ticked nothing
        changed = False

        # A response handshake completing this edge carries the payload
        # selected at the last settle — i.e. from *pre-tick* state.
        # Resolve the selection now, before the countdown ticks below
        # can mature another window entry and skew the round-robin pick.
        b_fired_entry = None
        if b.valid._value and b.ready._value and self.faults.spurious_b is None:
            b_fired_entry = self._select_b_entry()
        r_fired_job = None
        if r.valid._value and r.ready._value and self.faults.spurious_r is None:
            r_fired_job = self._select_r_job()

        # The wait counters feed drive() only through the
        # "wait >= *_ready_delay" comparisons, so only a threshold
        # crossing on an open (non-deaf, in-capacity) channel moves a
        # readiness output — and such crossings always happen in a real
        # (awake) update: either per-cycle, or as the declared timed
        # wake of a slept span.  A slept span's ticks are reconstructed
        # here via `elapsed`, which is 1 in always-on operation.
        old_wait = self._aw_wait
        if aw.valid._value:
            self._aw_wait = old_wait + elapsed if old_wait > 0 else 1
        else:
            self._aw_wait = 0
        if (
            (old_wait >= self.aw_ready_delay)
            != (self._aw_wait >= self.aw_ready_delay)
            and not self.faults.deaf_aw
            and self._write_capacity()
        ):
            changed = True
        old_wait = self._ar_wait
        if ar.valid._value:
            self._ar_wait = old_wait + elapsed if old_wait > 0 else 1
        else:
            self._ar_wait = 0
        if (
            (old_wait >= self.ar_ready_delay)
            != (self._ar_wait >= self.ar_ready_delay)
            and not self.faults.deaf_ar
            and len(self._reads) < self.max_outstanding
        ):
            changed = True
        if self._writes:
            job = self._writes[0]
            old_wait = job.w_wait
            job.w_wait = old_wait + elapsed
            if (
                (old_wait >= self.w_ready_delay)
                != (job.w_wait >= self.w_ready_delay)
                and not self.faults.deaf_w
            ):
                changed = True
        # b_latency countdowns: serially in the legacy in-order regime
        # (the front-most nonzero entry, one tick per cycle — a span of
        # `elapsed` cycles distributes across the queue in that order);
        # in parallel across the queue when a reorder window is open,
        # since any window entry maturing can change the selection.
        if self._b_window() <= 1:
            remaining = elapsed
            for entry in self._b_queue:
                if remaining <= 0:
                    break
                if entry[1] <= 0:
                    continue
                ticks = entry[1] if entry[1] < remaining else remaining
                entry[1] -= ticks
                remaining -= ticks
                if (
                    entry[1] == 0
                    and entry is self._b_queue[0]
                    and not self.faults.mute_b
                    and self.faults.spurious_b is None
                ):
                    changed = True
        else:
            window = self._b_window()
            for position, entry in enumerate(self._b_queue):
                if entry[1] <= 0:
                    continue
                ticks = entry[1] if entry[1] < elapsed else elapsed
                entry[1] -= ticks
                if (
                    entry[1] == 0
                    and position < window
                    and not self.faults.mute_b
                    and self.faults.spurious_b is None
                ):
                    changed = True
        # r_latency/r_gap chains count down in parallel across jobs
        # (countdown first, then gap); a chain reaching zero on an
        # unparked channel makes its job selectable next settle.
        for job in self._reads:
            ticked = False
            rest = elapsed
            if job.countdown > 0:
                ticks = job.countdown if job.countdown < rest else rest
                job.countdown -= ticks
                rest -= ticks
                ticked = ticks > 0
            if rest > 0 and job.gap > 0:
                job.gap -= job.gap if job.gap < rest else rest
                ticked = True
            if (
                ticked
                and job.countdown == 0
                and job.gap == 0
                and not self.faults.mute_r
                and self.faults.spurious_r is None
            ):
                changed = True

        if aw.valid._value and aw.ready._value:
            self._aw_wait = 0
            beat = aw.payload._value
            self._writes.append(
                _WriteJob(
                    beat,
                    burst_addresses(beat.addr, beat.len, beat.size, beat.burst),
                )
            )
            changed = True
        if ar.valid._value and ar.ready._value:
            self._ar_wait = 0
            beat = ar.payload._value
            self._reads.append(
                _ReadJob(
                    beat,
                    burst_addresses(beat.addr, beat.len, beat.size, beat.burst),
                    countdown=self.r_latency,
                )
            )
            changed = True
        if w.valid._value and w.ready._value:
            self._on_w_fired(w.payload._value)
            changed = True
        if b.valid._value and b.ready._value:
            self._on_b_fired(b_fired_entry)
            changed = True
        if r.valid._value and r.ready._value:
            self._on_r_fired(r_fired_job)
            changed = True
        if changed:
            self.schedule_drive()

    def _on_w_fired(self, beat) -> None:
        if not self._writes:
            return  # W beat with no accepted AW; protocol checker's domain
        job = self._writes[0]
        width = bytes_per_beat(job.aw.size)
        bus_bytes = self.bus.data_bytes
        if width < bus_bytes:
            # Narrow beat: data and strobes are lane-positioned over the
            # bus-aligned word containing the beat address.
            addr = job.addrs[job.index]
            base = addr - beat_lane(addr, bus_bytes)
            self.memory.write_masked(base, beat.data, beat.strb, bus_bytes)
        else:
            self.memory.write_masked(
                job.addrs[job.index], beat.data, beat.strb, width
            )
        job.w_wait = 0
        job.index += 1
        if beat.last or job.index >= len(job.addrs):
            self._writes.popleft()
            self._b_queue.append([job.aw.id, self.b_latency])
            self.writes_done += 1

    def _on_b_fired(self, entry: Optional[List[int]]) -> None:
        if self.faults.spurious_b is not None:
            self.faults.spurious_b = None
            return
        if entry is None:
            return
        self._b_queue.remove(entry)
        if self._b_window() > 1:
            self._b_rr += 1

    def _on_r_fired(self, job: Optional[_ReadJob]) -> None:
        if self.faults.spurious_r is not None:
            self.faults.spurious_r = None
            return
        if job is None:
            return
        job.index += 1
        if self.interleave_reads or self.reorder_depth > 1:
            self._r_rr += 1
        if job.index >= len(job.addrs):
            self._reads.remove(job)
            self.reads_done += 1
        else:
            job.gap = self.r_gap

    def _take_reset(self) -> None:
        self._aw_wait = 0
        self._ar_wait = 0
        self._writes.clear()
        self._b_queue.clear()
        self._reads.clear()
        self._r_rr = 0
        self._b_rr = 0
        if self.reset_clears_faults:
            self.faults.clear()

    def reset(self) -> None:
        self._take_reset()
        self._in_reset = False
        self.resets_taken = 0
        self.writes_done = 0
        self.reads_done = 0
        self._stamp = 0
        self.faults.clear()
        self.cancel_wake()
        self.schedule_drive()
        self.schedule_update()
