"""Rule-based AXI4 protocol checker (AXIChecker-class, ref. [13]).

A passive observer that applies a library of AXI4 protocol rules to one
interface, modelled on Chen et al.'s synthesizable AXIChecker.  Rules
are named in the ARM protocol-assertion style (``ERRM_*`` for manager
obligations, ``ERRS_*`` for subordinate obligations).

This module serves three roles in the reproduction:

* the :class:`~repro.baselines.axichecker.AxiChecker` baseline of
  Table II wraps it;
* property tests drive random legal traffic through it and assert zero
  false positives;
* fault-injection tests assert that the corresponding rule fires.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional

from ..sim.component import Component
from .interface import AxiInterface
from .types import (
    MAX_BURST_LEN,
    BurstType,
    Resp,
    aligned,
    beat_strb,
    burst_addresses,
    crosses_4k_boundary,
    is_legal_wrap_len,
)


@dataclasses.dataclass(frozen=True)
class Rule:
    """One protocol rule."""

    name: str
    description: str


@dataclasses.dataclass(frozen=True)
class RuleViolation:
    """One observed rule violation."""

    rule: Rule
    cycle: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - log formatting
        return f"[cycle {self.cycle}] {self.rule.name}: {self.detail}"


def _rule(name: str, description: str) -> Rule:
    rule = Rule(name, description)
    RULES[name] = rule
    return rule


RULES: Dict[str, Rule] = {}

# Manager address-channel obligations.
ERRM_AWVALID_STABLE = _rule(
    "ERRM_AWVALID_STABLE", "AWVALID must stay asserted until AWREADY"
)
ERRM_AW_PAYLOAD_STABLE = _rule(
    "ERRM_AW_PAYLOAD_STABLE", "AW payload must not change while stalled"
)
ERRM_AWADDR_ALIGNED_WRAP = _rule(
    "ERRM_AWADDR_ALIGNED_WRAP", "WRAP bursts require size-aligned addresses"
)
ERRM_AWLEN_WRAP = _rule(
    "ERRM_AWLEN_WRAP", "WRAP bursts must be 2, 4, 8 or 16 beats"
)
ERRM_AW_4K_BOUNDARY = _rule(
    "ERRM_AW_4K_BOUNDARY", "INCR bursts must not cross a 4 KiB boundary"
)
ERRM_AWLEN_RANGE = _rule(
    "ERRM_AWLEN_RANGE", f"AWLEN must encode at most {MAX_BURST_LEN} beats"
)
ERRM_ARVALID_STABLE = _rule(
    "ERRM_ARVALID_STABLE", "ARVALID must stay asserted until ARREADY"
)
ERRM_AR_PAYLOAD_STABLE = _rule(
    "ERRM_AR_PAYLOAD_STABLE", "AR payload must not change while stalled"
)
ERRM_ARADDR_ALIGNED_WRAP = _rule(
    "ERRM_ARADDR_ALIGNED_WRAP", "WRAP bursts require size-aligned addresses"
)
ERRM_ARLEN_WRAP = _rule(
    "ERRM_ARLEN_WRAP", "WRAP bursts must be 2, 4, 8 or 16 beats"
)
ERRM_AR_4K_BOUNDARY = _rule(
    "ERRM_AR_4K_BOUNDARY", "INCR bursts must not cross a 4 KiB boundary"
)

# Manager write-data obligations.
ERRM_WVALID_STABLE = _rule(
    "ERRM_WVALID_STABLE", "WVALID must stay asserted until WREADY"
)
ERRM_W_PAYLOAD_STABLE = _rule(
    "ERRM_W_PAYLOAD_STABLE", "W payload must not change while stalled"
)
ERRM_WLAST_POSITION = _rule(
    "ERRM_WLAST_POSITION", "WLAST must mark exactly the AWLEN-th beat"
)
ERRM_W_EXTRA_BEATS = _rule(
    "ERRM_W_EXTRA_BEATS", "no W beats beyond the burst length"
)
ERRM_W_NO_OUTSTANDING = _rule(
    "ERRM_W_NO_OUTSTANDING", "W data without any outstanding write address"
)
ERRM_WSTRB_RANGE = _rule(
    "ERRM_WSTRB_RANGE", "WSTRB must only enable lanes within the beat size"
)

# Subordinate response obligations.
ERRS_BVALID_STABLE = _rule(
    "ERRS_BVALID_STABLE", "BVALID must stay asserted until BREADY"
)
ERRS_BRESP_LEGAL = _rule("ERRS_BRESP_LEGAL", "BRESP must be a legal encoding")
ERRS_B_BEFORE_WLAST = _rule(
    "ERRS_B_BEFORE_WLAST", "B response must follow the write's WLAST"
)
ERRS_B_UNREQUESTED = _rule(
    "ERRS_B_UNREQUESTED", "B response without a matching outstanding write"
)
ERRS_RVALID_STABLE = _rule(
    "ERRS_RVALID_STABLE", "RVALID must stay asserted until RREADY"
)
ERRS_RRESP_LEGAL = _rule("ERRS_RRESP_LEGAL", "RRESP must be a legal encoding")
ERRS_R_UNREQUESTED = _rule(
    "ERRS_R_UNREQUESTED", "R beat without a matching outstanding read"
)
ERRS_RLAST_POSITION = _rule(
    "ERRS_RLAST_POSITION", "RLAST must mark exactly the ARLEN-th beat"
)
ERRS_R_IN_ORDER = _rule(
    "ERRS_R_IN_ORDER", "same-ID reads must complete in request order"
)
ERRS_R_INTERLEAVE_DEPTH = _rule(
    "ERRS_R_INTERLEAVE_DEPTH",
    "R data interleaved across more IDs than the configured depth",
)
ERRM_AXSIZE_RANGE = _rule(
    "ERRM_AXSIZE_RANGE", "AxSIZE must not exceed the data bus width"
)


@dataclasses.dataclass
class _PendingWrite:
    txn_id: int
    beats: int
    beats_seen: int = 0
    wlast_seen: bool = False
    size: int = 3
    addrs: tuple = ()


@dataclasses.dataclass
class _PendingRead:
    txn_id: int
    beats: int
    beats_seen: int = 0


class _Stability:
    """Tracks valid/payload stability across stalled cycles."""

    __slots__ = ("pending", "payload")

    def __init__(self) -> None:
        self.pending = False
        self.payload = None

    def step(self, valid: bool, ready: bool, payload) -> Optional[str]:
        """Returns 'drop', 'payload', or None."""
        outcome = None
        if self.pending:
            if not valid:
                outcome = "drop"
            elif payload != self.payload:
                outcome = "payload"
        self.pending = bool(valid and not ready)
        self.payload = payload if self.pending else None
        return outcome


class ProtocolChecker(Component):
    """Passive AXI4 rule checker attached to one interface.

    Parameters
    ----------
    bus:
        Interface to observe; its ``data_bytes`` feeds the narrow-beat
        WSTRB lane rules.
    max_r_interleave:
        Interleaving-legality bound: the maximum number of read bursts
        whose R data may be concurrently interleaved (AXI4 leaves this
        unbounded, but interconnects advertise a depth).  ``None``
        disables the check, so legal traffic never false-positives.
    """

    def __init__(
        self,
        name: str,
        bus: AxiInterface,
        max_r_interleave: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        self.bus = bus
        self.max_r_interleave = max_r_interleave
        self._bus_bytes = getattr(bus, "data_bytes", 8)
        self.violations: List[RuleViolation] = []
        self._cycle = 0
        self._stab = {ch: _Stability() for ch in ("aw", "w", "b", "ar", "r")}
        self._writes: Dict[int, Deque[_PendingWrite]] = {}
        self._write_order: Deque[_PendingWrite] = deque()
        self._reads: Dict[int, Deque[_PendingRead]] = {}

    # ------------------------------------------------------------------
    def wires(self):
        yield from self.bus.wires()

    def _flag(self, rule: Rule, detail: str = "") -> None:
        self.violations.append(RuleViolation(rule, self._cycle, detail))

    def count(self, rule: Rule) -> int:
        return sum(1 for violation in self.violations if violation.rule == rule)

    @property
    def clean(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    def update(self) -> None:
        # Violation timestamps follow the owning simulator's clock when
        # registered (directly or via the AxiChecker wrapper), so
        # skipped quiescent spans cannot skew them.
        sim = self._sim
        self._cycle = sim.cycle + 1 if sim is not None else self._cycle + 1
        self._check_stability()
        bus = self.bus
        if bus.aw.fired():
            self._on_aw(bus.aw.payload.value)
        if bus.ar.fired():
            self._on_ar(bus.ar.payload.value)
        if bus.w.fired():
            self._on_w(bus.w.payload.value)
        if bus.b.fired():
            self._on_b(bus.b.payload.value)
        if bus.r.fired():
            self._on_r(bus.r.payload.value)

    def _check_stability(self) -> None:
        rules = {
            "aw": (ERRM_AWVALID_STABLE, ERRM_AW_PAYLOAD_STABLE),
            "w": (ERRM_WVALID_STABLE, ERRM_W_PAYLOAD_STABLE),
            "b": (ERRS_BVALID_STABLE, None),
            "ar": (ERRM_ARVALID_STABLE, ERRM_AR_PAYLOAD_STABLE),
            "r": (ERRS_RVALID_STABLE, None),
        }
        for name, (drop_rule, payload_rule) in rules.items():
            channel = getattr(self.bus, name)
            outcome = self._stab[name].step(
                bool(channel.valid.value),
                bool(channel.ready.value),
                channel.payload.value,
            )
            if outcome == "drop":
                self._flag(drop_rule, f"{name} valid dropped before ready")
            elif outcome == "payload" and payload_rule is not None:
                self._flag(payload_rule, f"{name} payload changed while stalled")

    # -- address channels -------------------------------------------------
    def _on_aw(self, beat) -> None:
        if beat.burst == BurstType.WRAP:
            if not is_legal_wrap_len(beat.len):
                self._flag(ERRM_AWLEN_WRAP, f"len={beat.len}")
            if not aligned(beat.addr, beat.size):
                self._flag(ERRM_AWADDR_ALIGNED_WRAP, f"addr={beat.addr:#x}")
        if crosses_4k_boundary(beat.addr, beat.len, beat.size, beat.burst):
            self._flag(ERRM_AW_4K_BOUNDARY, f"addr={beat.addr:#x} len={beat.len}")
        if not 0 <= beat.len < MAX_BURST_LEN:
            self._flag(ERRM_AWLEN_RANGE, f"len={beat.len}")
        if 0 <= beat.size <= 7 and (1 << beat.size) > self._bus_bytes:
            self._flag(
                ERRM_AXSIZE_RANGE,
                f"awsize={beat.size} on a {self._bus_bytes}-byte bus",
            )
        pending = _PendingWrite(txn_id=beat.id, beats=beat.len + 1)
        if 0 <= beat.len < MAX_BURST_LEN and 0 <= beat.size <= 7:
            pending.size = beat.size
            pending.addrs = tuple(
                burst_addresses(beat.addr, beat.len, beat.size, beat.burst)
            )
        self._writes.setdefault(beat.id, deque()).append(pending)
        self._write_order.append(pending)

    def _on_ar(self, beat) -> None:
        if beat.burst == BurstType.WRAP:
            if not is_legal_wrap_len(beat.len):
                self._flag(ERRM_ARLEN_WRAP, f"len={beat.len}")
            if not aligned(beat.addr, beat.size):
                self._flag(ERRM_ARADDR_ALIGNED_WRAP, f"addr={beat.addr:#x}")
        if crosses_4k_boundary(beat.addr, beat.len, beat.size, beat.burst):
            self._flag(ERRM_AR_4K_BOUNDARY, f"addr={beat.addr:#x} len={beat.len}")
        if 0 <= beat.size <= 7 and (1 << beat.size) > self._bus_bytes:
            self._flag(
                ERRM_AXSIZE_RANGE,
                f"arsize={beat.size} on a {self._bus_bytes}-byte bus",
            )
        self._reads.setdefault(beat.id, deque()).append(
            _PendingRead(txn_id=beat.id, beats=beat.len + 1)
        )

    # -- write data ---------------------------------------------------------
    def _current_write(self) -> Optional[_PendingWrite]:
        while self._write_order and self._write_order[0].wlast_seen:
            self._write_order.popleft()
        return self._write_order[0] if self._write_order else None

    def _on_w(self, beat) -> None:
        target = self._current_write()
        if target is None:
            self._flag(ERRM_W_NO_OUTSTANDING, "")
            return
        if target.beats_seen < len(target.addrs):
            # Sparse strobes are legal; lanes outside the beat's
            # size-and-address window are not.
            legal = beat_strb(
                target.addrs[target.beats_seen], target.size, self._bus_bytes
            )
            if beat.strb & ~legal:
                self._flag(
                    ERRM_WSTRB_RANGE,
                    f"strb={beat.strb:#x} outside lane mask {legal:#x} "
                    f"at beat {target.beats_seen}",
                )
        target.beats_seen += 1
        if beat.last:
            if target.beats_seen != target.beats:
                self._flag(
                    ERRM_WLAST_POSITION,
                    f"wlast at beat {target.beats_seen} of {target.beats}",
                )
            target.wlast_seen = True
        elif target.beats_seen >= target.beats:
            self._flag(
                ERRM_W_EXTRA_BEATS,
                f"beat {target.beats_seen} of {target.beats} without wlast",
            )
            target.wlast_seen = True  # resynchronize

    # -- responses ------------------------------------------------------------
    def _on_b(self, beat) -> None:
        if beat.resp not in tuple(Resp):
            self._flag(ERRS_BRESP_LEGAL, f"resp={beat.resp}")
        queue = self._writes.get(beat.id)
        if not queue:
            self._flag(ERRS_B_UNREQUESTED, f"id={beat.id}")
            return
        head = queue[0]
        if not head.wlast_seen:
            self._flag(ERRS_B_BEFORE_WLAST, f"id={beat.id}")
            return
        queue.popleft()
        if not queue:
            del self._writes[beat.id]

    def _on_r(self, beat) -> None:
        if beat.resp not in tuple(Resp):
            self._flag(ERRS_RRESP_LEGAL, f"resp={beat.resp}")
        queue = self._reads.get(beat.id)
        if not queue:
            self._flag(ERRS_R_UNREQUESTED, f"id={beat.id}")
            return
        head = queue[0]
        if head.beats_seen == 0 and self.max_r_interleave is not None:
            # A new burst's first beat joins the set of mid-burst
            # streams; count how many distinct IDs it interleaves with.
            active = sum(
                1
                for txn_id, pending in self._reads.items()
                if txn_id != beat.id and pending and pending[0].beats_seen > 0
            )
            if active + 1 > self.max_r_interleave:
                self._flag(
                    ERRS_R_INTERLEAVE_DEPTH,
                    f"id={beat.id} joins {active} mid-burst streams "
                    f"(depth limit {self.max_r_interleave})",
                )
        head.beats_seen += 1
        if beat.last:
            if head.beats_seen != head.beats:
                self._flag(
                    ERRS_RLAST_POSITION,
                    f"rlast at beat {head.beats_seen} of {head.beats}",
                )
                if any(
                    pending.beats == head.beats_seen
                    for pending in list(queue)[1:]
                ):
                    # The rlast lands exactly where a younger same-ID
                    # burst would end: the signature of a subordinate
                    # completing same-ID reads out of request order.
                    self._flag(
                        ERRS_R_IN_ORDER,
                        f"id={beat.id}: rlast matches a younger burst's "
                        f"length — served out of request order",
                    )
            queue.popleft()
            if not queue:
                del self._reads[beat.id]
        elif head.beats_seen >= head.beats:
            self._flag(
                ERRS_RLAST_POSITION,
                f"beat {head.beats_seen} of {head.beats} without rlast",
            )

    def reset(self) -> None:
        self.violations.clear()
        self._cycle = 0
        self._stab = {ch: _Stability() for ch in ("aw", "w", "b", "ar", "r")}
        self._writes.clear()
        self._write_order.clear()
        self._reads.clear()
