"""AXI4 protocol types, enums and helper arithmetic.

Follows the AMBA AXI4 specification (ARM IHI 0022).  Only the fields the
TMU observes are modelled in detail; the rest (QoS, region, user) exist
as payload fields so protocol rules about them remain expressible.
"""

from __future__ import annotations

import enum


class BurstType(enum.IntEnum):
    """AXI4 AxBURST encoding."""

    FIXED = 0b00
    INCR = 0b01
    WRAP = 0b10

    @property
    def is_reserved(self) -> bool:
        return False  # 0b11 never constructs; kept for rule symmetry


class Resp(enum.IntEnum):
    """AXI4 xRESP encoding."""

    OKAY = 0b00
    EXOKAY = 0b01
    SLVERR = 0b10
    DECERR = 0b11

    @property
    def is_error(self) -> bool:
        return self in (Resp.SLVERR, Resp.DECERR)


class AxiDir(enum.Enum):
    """Transaction direction, used throughout the TMU's bookkeeping."""

    WRITE = "write"
    READ = "read"


#: Maximum beats in a single AXI4 INCR burst (AxLEN is 8 bits).
MAX_BURST_LEN = 256

#: Maximum bytes per beat for a 1024-bit data bus (AxSIZE is 3 bits).
MAX_BYTES_PER_BEAT = 128

#: 4 KiB boundary that AXI4 bursts must not cross.
BOUNDARY_4K = 0x1000


def beats_of(axlen: int) -> int:
    """Number of data beats encoded by an AxLEN field value."""
    if not 0 <= axlen < MAX_BURST_LEN:
        raise ValueError(f"AxLEN {axlen} out of range [0, {MAX_BURST_LEN})")
    return axlen + 1


def axlen_of(beats: int) -> int:
    """AxLEN field value for a burst of *beats* data beats."""
    if not 1 <= beats <= MAX_BURST_LEN:
        raise ValueError(f"burst of {beats} beats out of range [1, {MAX_BURST_LEN}]")
    return beats - 1


def bytes_per_beat(axsize: int) -> int:
    """Bytes transferred per beat for an AxSIZE field value."""
    if not 0 <= axsize <= 7:
        raise ValueError(f"AxSIZE {axsize} out of range [0, 7]")
    return 1 << axsize


def axsize_of(byte_count: int) -> int:
    """AxSIZE field value for *byte_count* bytes per beat."""
    size = byte_count.bit_length() - 1
    if byte_count <= 0 or (1 << size) != byte_count or byte_count > MAX_BYTES_PER_BEAT:
        raise ValueError(f"{byte_count} is not a legal AXI beat width")
    return size


def burst_bytes(axlen: int, axsize: int) -> int:
    """Total bytes moved by a burst."""
    return beats_of(axlen) * bytes_per_beat(axsize)


def crosses_4k_boundary(addr: int, axlen: int, axsize: int, burst: BurstType) -> bool:
    """True when an INCR burst would cross a 4 KiB boundary (illegal in AXI4)."""
    if burst != BurstType.INCR:
        return False
    last = addr + burst_bytes(axlen, axsize) - 1
    return (addr // BOUNDARY_4K) != (last // BOUNDARY_4K)


def wrap_boundary(addr: int, axlen: int, axsize: int) -> int:
    """Lowest address of the wrapping window for a WRAP burst."""
    size = burst_bytes(axlen, axsize)
    return (addr // size) * size


def is_legal_wrap_len(axlen: int) -> bool:
    """WRAP bursts must have 2, 4, 8 or 16 beats."""
    return beats_of(axlen) in (2, 4, 8, 16)


def aligned(addr: int, axsize: int) -> bool:
    """True when *addr* is aligned to the beat size."""
    return addr % bytes_per_beat(axsize) == 0


def burst_addresses(addr: int, axlen: int, axsize: int, burst: BurstType):
    """Per-beat addresses of a burst, following AXI4 address arithmetic."""
    width = bytes_per_beat(axsize)
    count = beats_of(axlen)
    if burst == BurstType.FIXED:
        return [addr] * count
    if burst == BurstType.INCR:
        return [addr + i * width for i in range(count)]
    # WRAP: increment, wrapping inside the aligned window.
    low = wrap_boundary(addr, axlen, axsize)
    span = count * width
    return [low + ((addr - low + i * width) % span) for i in range(count)]


def beat_lane(addr: int, bus_bytes: int) -> int:
    """Byte-lane offset of a beat's data on a *bus_bytes*-wide data bus.

    AXI4 narrow transfers place each beat's bytes on the lanes its
    address selects within the bus word; a full-width aligned beat sits
    at lane 0 (the historical full-bus convention degenerates to this).
    """
    return addr % bus_bytes


def beat_strb(addr: int, axsize: int, bus_bytes: int) -> int:
    """Write-strobe mask (over the full bus word) for one narrow beat."""
    width = bytes_per_beat(axsize)
    if width > bus_bytes:
        raise ValueError(
            f"AxSIZE {axsize} ({width} bytes) exceeds the {bus_bytes}-byte bus"
        )
    return ((1 << width) - 1) << beat_lane(addr, bus_bytes)
