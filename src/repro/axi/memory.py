"""Sparse byte-addressable memory model backing AXI subordinates.

Pages are allocated lazily so a 64-bit address space costs nothing until
written.  Reads of unwritten bytes return a configurable fill byte,
making "read garbage" bugs deterministic in tests.
"""

from __future__ import annotations

from typing import Dict


class SparseMemory:
    """Lazily-paged byte memory.

    Parameters
    ----------
    page_bits:
        log2 of the page size in bytes.
    fill:
        Byte value returned for never-written locations.
    """

    def __init__(self, page_bits: int = 12, fill: int = 0) -> None:
        if not 0 <= fill <= 0xFF:
            raise ValueError("fill must be a byte value")
        self._page_bits = page_bits
        self._page_size = 1 << page_bits
        self._fill = fill
        self._pages: Dict[int, bytearray] = {}
        self._watchers: tuple = ()

    def watch(self, callback) -> None:
        """Invoke *callback* after every store.

        Subordinates register their scheduler invalidation here so a
        testbench writing memory mid-simulation (while a read burst is
        in flight) re-evaluates the R datapath — the demand-driven
        contract for state mutated behind the component's back.
        """
        if callback not in self._watchers:
            self._watchers = (*self._watchers, callback)

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    def _page_for(self, addr: int) -> bytearray:
        page_index = addr >> self._page_bits
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray([self._fill]) * self._page_size
            self._pages[page_index] = page
        return page

    def read_byte(self, addr: int) -> int:
        page = self._pages.get(addr >> self._page_bits)
        if page is None:
            return self._fill
        return page[addr & (self._page_size - 1)]

    def write_byte(self, addr: int, value: int) -> None:
        self._page_for(addr)[addr & (self._page_size - 1)] = value & 0xFF
        for watcher in self._watchers:
            watcher()

    def read(self, addr: int, length: int) -> bytes:
        """Read *length* bytes starting at *addr*."""
        return bytes(self.read_byte(addr + i) for i in range(length))

    def write(self, addr: int, data: bytes) -> None:
        """Write *data* starting at *addr*."""
        for i, byte in enumerate(data):
            self.write_byte(addr + i, byte)

    def read_word(self, addr: int, width: int) -> int:
        """Read a little-endian integer of *width* bytes."""
        return int.from_bytes(self.read(addr, width), "little")

    def write_word(self, addr: int, value: int, width: int) -> None:
        """Write a little-endian integer of *width* bytes."""
        self.write(addr, (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little"))

    def write_masked(self, addr: int, value: int, strb: int, width: int) -> None:
        """Apply a write-strobe-masked store, as the W channel requires."""
        data = (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
        for lane in range(width):
            if strb & (1 << lane):
                self.write_byte(addr + lane, data[lane])
