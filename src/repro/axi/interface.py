"""AXI4 interface bundle: the five channels of one manager↔subordinate link.

An :class:`AxiInterface` is a passive bundle of wires; components on
either side drive the appropriate sides (request-channel sources drive
``valid``/``payload``, sinks drive ``ready``; response channels are
mirrored).
"""

from __future__ import annotations

from typing import Iterator

from ..sim.signal import Channel, Wire


#: Default bus data width in bytes (Cheshire's 64-bit bus).
DEFAULT_DATA_BYTES = 8


class AxiInterface:
    """The five AXI4 channels between one manager port and one subordinate.

    Channels
    --------
    aw, w, ar:
        Request channels — manager side is the source.
    b, r:
        Response channels — subordinate side is the source.

    ``data_bytes`` is the W/R data bus width in bytes.  Narrow transfers
    (AxSIZE smaller than the bus) place their data and write strobes on
    the byte lanes the beat address selects, exactly as AXI4 specifies;
    components on both sides consult this width for the lane math.
    """

    def __init__(self, name: str, data_bytes: int = DEFAULT_DATA_BYTES) -> None:
        if data_bytes <= 0 or data_bytes & (data_bytes - 1):
            raise ValueError(f"data_bytes must be a power of two, got {data_bytes}")
        self.name = name
        self.data_bytes = data_bytes
        self.aw = Channel(f"{name}.aw")
        self.w = Channel(f"{name}.w")
        self.b = Channel(f"{name}.b")
        self.ar = Channel(f"{name}.ar")
        self.r = Channel(f"{name}.r")

    @property
    def channels(self):
        return (self.aw, self.w, self.b, self.ar, self.r)

    def wires(self) -> Iterator[Wire]:
        for channel in self.channels:
            yield from channel.wires()

    def reset(self) -> None:
        for channel in self.channels:
            channel.reset()

    def idle_requests(self) -> None:
        """Manager-side helper: deassert all request valids."""
        self.aw.idle()
        self.w.idle()
        self.ar.idle()

    def idle_responses(self) -> None:
        """Subordinate-side helper: deassert all response valids."""
        self.b.idle()
        self.r.idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AxiInterface({self.name!r})"
