"""AXI ID remapper: compacts a wide, sparse ID space (paper §II-A).

AXI managers may use arbitrary (wide) transaction IDs; tracking tables
indexed by raw ID would be enormous.  The remap table maps each *live*
original ID to a compact slot in ``[0, capacity)``; the slot is held (and
reference-counted) while any transaction with that original ID is
outstanding, then recycled.

The table is designed for the two-phase kernel: :meth:`probe` is a pure
function of registered state (safe to call repeatedly during the settle
phase to compute the forwarded payload), while :meth:`acquire` /
:meth:`release` commit changes during the update phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class IdRemapTable:
    """Reference-counted original-ID → compact-slot mapping."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slot_of: Dict[int, int] = {}
        self._orig_of: List[Optional[int]] = [None] * capacity
        self._refs: List[int] = [0] * capacity

    # ------------------------------------------------------------------
    # Settle-phase (pure) queries
    # ------------------------------------------------------------------
    def probe(self, orig_id: int) -> Optional[int]:
        """The slot *orig_id* would map to, or None when the table is full.

        Deterministic and side-effect free: an existing mapping wins,
        otherwise the lowest free slot is proposed.
        """
        slot = self._slot_of.get(orig_id)
        if slot is not None:
            return slot
        for candidate in range(self.capacity):
            if self._refs[candidate] == 0:
                return candidate
        return None

    def orig_of(self, slot: int) -> Optional[int]:
        """Reverse lookup: the original ID currently bound to *slot*."""
        if not 0 <= slot < self.capacity:
            return None
        return self._orig_of[slot]

    @property
    def live_mappings(self) -> Dict[int, int]:
        return dict(self._slot_of)

    # ------------------------------------------------------------------
    # Update-phase (mutating) operations
    # ------------------------------------------------------------------
    def acquire(self, orig_id: int) -> int:
        """Bind (or re-reference) *orig_id*; returns its compact slot."""
        slot = self.probe(orig_id)
        if slot is None:
            raise RuntimeError(
                f"ID remap table full ({self.capacity} slots) — caller must "
                "stall the request instead of acquiring"
            )
        if self._refs[slot] == 0:
            self._slot_of[orig_id] = slot
            self._orig_of[slot] = orig_id
        self._refs[slot] += 1
        return slot

    def release(self, slot: int) -> None:
        """Drop one reference on *slot*; recycle it at zero."""
        if not 0 <= slot < self.capacity:
            raise ValueError(f"slot {slot} out of range")
        if self._refs[slot] <= 0:
            return  # releasing an unbound slot is a no-op (fault aborts)
        self._refs[slot] -= 1
        if self._refs[slot] == 0:
            orig = self._orig_of[slot]
            self._orig_of[slot] = None
            if orig is not None:
                self._slot_of.pop(orig, None)

    def refs(self, slot: int) -> int:
        return self._refs[slot] if 0 <= slot < self.capacity else 0

    def snapshot_state(self):
        """Comparable copy of the full mapping state (verify diffs)."""
        return (
            tuple(sorted(self._slot_of.items())),
            tuple(self._orig_of),
            tuple(self._refs),
        )

    def clear(self) -> None:
        self._slot_of.clear()
        self._orig_of = [None] * self.capacity
        self._refs = [0] * self.capacity
