"""Workload generation: transaction specs and stochastic traffic models.

A :class:`TransactionSpec` fully describes one AXI4 transaction the
manager will issue — direction, ID, address, burst geometry, data, and
pacing (inter-beat gaps, issue delay).  Generators build spec streams
matching the paper's evaluation workloads: random mixes over a handful of
IDs, long DMA-style bursts, and the 250-beat Ethernet frame of the
system-level experiment.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence

from .addrspace import AddressSpace
from .types import (
    MAX_BURST_LEN,
    AxiDir,
    BurstType,
    axlen_of,
    beat_lane,
    burst_addresses,
    bytes_per_beat,
    wrap_boundary,
)


@dataclasses.dataclass
class TransactionSpec:
    """One transaction to be issued by a traffic-generating manager.

    Parameters
    ----------
    direction:
        Write or read.
    txn_id:
        AXI ID as seen on the manager's port (before any remapping).
    addr:
        Start address.
    len:
        AxLEN (beats - 1).
    size:
        AxSIZE (log2 bytes per beat).
    burst:
        Burst type.
    data:
        Write data beats; generated deterministically when ``None``.
    issue_delay:
        Idle cycles the manager waits before presenting the address beat.
    w_gap:
        Idle cycles between consecutive W beats (models source stalls).
    resp_ready_delay:
        Cycles the manager delays ``b.ready``/``r.ready`` per beat.
    qos:
        AxQOS priority (0-15); honoured by QoS-arbitrating crossbars.
    bus_bytes:
        Width of the data bus the transaction travels on.  Narrow beats
        (``size`` < bus width) occupy the byte lanes their addresses
        select; a beat wider than the bus is rejected outright.
    """

    direction: AxiDir
    txn_id: int
    addr: int
    len: int = 0
    size: int = 3
    burst: BurstType = BurstType.INCR
    data: Optional[List[int]] = None
    issue_delay: int = 0
    w_gap: int = 0
    resp_ready_delay: int = 0
    qos: int = 0
    bus_bytes: int = 8

    def __post_init__(self) -> None:
        if bytes_per_beat(self.size) > self.bus_bytes:
            raise ValueError(
                f"AxSIZE {self.size} ({bytes_per_beat(self.size)} bytes/beat) "
                f"exceeds the {self.bus_bytes}-byte data bus"
            )

    @property
    def beats(self) -> int:
        return self.len + 1

    def write_data(self) -> List[int]:
        """Concrete write beats: supplied data or a deterministic pattern."""
        if self.data is not None:
            if len(self.data) != self.beats:
                raise ValueError(
                    f"spec carries {len(self.data)} data beats but AxLEN "
                    f"implies {self.beats}"
                )
            return list(self.data)
        mask = (1 << (8 * bytes_per_beat(self.size))) - 1
        return [
            ((self.addr + i) * 0x9E3779B97F4A7C15 + self.txn_id) & mask
            for i in range(self.beats)
        ]

    def full_strb(self) -> int:
        """Write strobe with every lane enabled for this beat size."""
        return (1 << bytes_per_beat(self.size)) - 1

    def beat_addresses(self) -> List[int]:
        """Per-beat addresses following AXI4 address arithmetic."""
        return burst_addresses(self.addr, self.len, self.size, self.burst)

    def beat_address(self, index: int) -> int:
        """Address of beat *index* (O(1), unlike :meth:`beat_addresses`)."""
        width = bytes_per_beat(self.size)
        if self.burst == BurstType.FIXED:
            return self.addr
        if self.burst == BurstType.INCR:
            return self.addr + index * width
        low = wrap_boundary(self.addr, self.len, self.size)
        span = self.beats * width
        return low + ((self.addr - low + index * width) % span)

    def lane(self, index: int) -> int:
        """Byte lane of beat *index* on the ``bus_bytes``-wide data bus."""
        return beat_lane(self.beat_address(index), self.bus_bytes)

    def beat_strb(self, index: int) -> int:
        """Write strobe of beat *index*, positioned on its byte lanes."""
        return self.full_strb() << self.lane(index)

    def wire_write_beats(self) -> List[tuple]:
        """``(data, strb)`` per beat, as they appear on the W channel.

        Full-width aligned bursts sit on lane 0 and come out exactly as
        :meth:`write_data`/:meth:`full_strb` always produced; narrow
        beats are shifted onto the byte lanes their addresses select.
        """
        values = self.write_data()
        full = self.full_strb()
        if (
            bytes_per_beat(self.size) == self.bus_bytes
            and self.addr % self.bus_bytes == 0
        ):
            return [(value, full) for value in values]
        return [
            (value << (8 * lane), full << lane)
            for value, lane in (
                (values[i], self.lane(i)) for i in range(self.beats)
            )
        ]


def write_spec(
    txn_id: int,
    addr: int,
    beats: int = 1,
    size: int = 3,
    **kwargs,
) -> TransactionSpec:
    """Convenience constructor for an INCR write burst of *beats* beats."""
    return TransactionSpec(
        AxiDir.WRITE, txn_id, addr, len=axlen_of(beats), size=size, **kwargs
    )


def read_spec(
    txn_id: int,
    addr: int,
    beats: int = 1,
    size: int = 3,
    **kwargs,
) -> TransactionSpec:
    """Convenience constructor for an INCR read burst of *beats* beats."""
    return TransactionSpec(
        AxiDir.READ, txn_id, addr, len=axlen_of(beats), size=size, **kwargs
    )


class RandomTraffic:
    """Random mixed read/write traffic over a configurable ID set.

    Mirrors the paper's IP-level setup: a few unique IDs (default 4),
    bounded burst lengths, interleaved reads and writes.  With a
    ``space`` memory map the generator draws weighted region targets —
    the multi-region, multi-subordinate workload shape — instead of a
    flat ``addr_space``; the flat path's RNG stream is untouched, so
    seeded reproducibility of existing campaigns is preserved.
    """

    def __init__(
        self,
        ids: Sequence[int] = (0, 1, 2, 3),
        max_beats: int = 16,
        size: int = 3,
        write_fraction: float = 0.5,
        addr_space: int = 1 << 20,
        max_issue_delay: int = 4,
        max_w_gap: int = 2,
        seed: int = 0,
        space: Optional["AddressSpace"] = None,
        bus_bytes: int = 8,
    ) -> None:
        if not ids:
            raise ValueError("at least one ID is required")
        self.ids = list(ids)
        self.max_beats = max_beats
        self.size = size
        self.write_fraction = write_fraction
        self.addr_space = addr_space
        self.max_issue_delay = max_issue_delay
        self.max_w_gap = max_w_gap
        self.bus_bytes = bus_bytes
        self.space = space
        self._targets: List = []
        self._weights: List[int] = []
        if space is not None:
            self._targets = space.weighted_regions()
            if not self._targets:
                raise ValueError("memory map has no weighted traffic targets")
            for region in self._targets:
                if region.base % 0x1000 or region.size % 0x1000:
                    raise ValueError(
                        f"traffic-target region {region.name!r} must be "
                        f"4 KiB-aligned in base and size"
                    )
            self._weights = [region.weight for region in self._targets]
        self._rng = random.Random(seed)

    def next_spec(self) -> TransactionSpec:
        rng = self._rng
        beats = rng.randint(1, self.max_beats)
        width = bytes_per_beat(self.size)
        # Clamp to an AXI-legal burst: AxLEN caps at 256 beats and an
        # INCR burst must fit inside one 4 KiB page.  Clamping after the
        # draw keeps the RNG stream identical for in-range parameters.
        beats = min(beats, MAX_BURST_LEN, 0x1000 // width)
        span = beats * width
        if self.space is None:
            page = rng.randrange(0, self.addr_space, 0x1000)
        else:
            region = rng.choices(self._targets, weights=self._weights)[0]
            page = region.base + 0x1000 * rng.randrange(region.size // 0x1000)
        offset = rng.randrange(0, 0x1000 - span + 1, width)
        direction = (
            AxiDir.WRITE if rng.random() < self.write_fraction else AxiDir.READ
        )
        return TransactionSpec(
            direction,
            rng.choice(self.ids),
            page + offset,
            len=beats - 1,
            size=self.size,
            issue_delay=rng.randint(0, self.max_issue_delay),
            w_gap=rng.randint(0, self.max_w_gap),
            bus_bytes=self.bus_bytes,
        )

    def take(self, count: int) -> List[TransactionSpec]:
        return [self.next_spec() for _ in range(count)]


def dma_stream(
    txn_id: int,
    base_addr: int,
    frames: int,
    beats_per_frame: int = 64,
    size: int = 3,
    direction: AxiDir = AxiDir.WRITE,
) -> List[TransactionSpec]:
    """Back-to-back long bursts, the shape an iDMA engine produces."""
    width = bytes_per_beat(size)
    specs = []
    for frame in range(frames):
        specs.append(
            TransactionSpec(
                direction,
                txn_id,
                base_addr + frame * beats_per_frame * width,
                len=beats_per_frame - 1,
                size=size,
            )
        )
    return specs


def chained_bursts(
    txn_id: int,
    base_addr: int,
    chain: Sequence[int],
    size: int = 3,
    direction: AxiDir = AxiDir.WRITE,
    issue_delay: int = 0,
) -> List[TransactionSpec]:
    """Burst chaining (paper §II-F): back-to-back dependent bursts.

    Each entry of *chain* is a burst length in beats; bursts are issued
    with no idle gap and contiguous addresses — the pattern that makes
    fixed time budgets produce false timeouts and that the adaptive
    queue-waiting bonus exists to absorb.
    """
    width = bytes_per_beat(size)
    specs: List[TransactionSpec] = []
    addr = base_addr
    for index, beats in enumerate(chain):
        if not 1 <= beats <= 256:
            raise ValueError(f"chain element {beats} out of range [1, 256]")
        specs.append(
            TransactionSpec(
                direction,
                txn_id,
                addr,
                len=beats - 1,
                size=size,
                issue_delay=issue_delay if index == 0 else 0,
            )
        )
        addr += beats * width
    return specs


def ethernet_frame_spec(
    txn_id: int = 0,
    addr: int = 0x3000_0000,
    beats: int = 250,
    size: int = 3,
) -> TransactionSpec:
    """The system-level experiment's workload: a 250-beat, 64-bit write.

    The paper stresses the Ethernet interface with a single 250-beat
    transaction on a 64-bit bus (§III-B).
    """
    return TransactionSpec(
        AxiDir.WRITE, txn_id, addr, len=beats - 1, size=size
    )
