"""Traffic-generating AXI4 manager with a completion scoreboard.

The manager issues :class:`~repro.axi.traffic.TransactionSpec` streams,
drives the AW/W/AR request channels with configurable pacing, accepts
B/R responses with configurable readiness, and records every completed
transaction (cycle-stamped per phase) in a scoreboard.  The scoreboard is
what the IP-level and system-level benches use to cross-check the TMU's
own performance logs.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..sim.component import Component, DriveSensitiveState
from .channels import ArBeat, AwBeat, BBeat, RBeat, WBeat
from .interface import AxiInterface
from .traffic import TransactionSpec
from .types import AxiDir, Resp, bytes_per_beat


@dataclasses.dataclass
class CompletedTransaction:
    """Scoreboard record of one finished transaction."""

    direction: AxiDir
    txn_id: int
    addr: int
    beats: int
    issue_cycle: int
    addr_cycle: int
    first_data_cycle: Optional[int]
    last_data_cycle: Optional[int]
    resp_cycle: int
    resp: Resp
    data: Optional[List[int]] = None

    @property
    def latency(self) -> int:
        """End-to-end latency from address handshake to completion."""
        return self.resp_cycle - self.addr_cycle

    @property
    def failed(self) -> bool:
        return self.resp.is_error


@dataclasses.dataclass
class ManagerFaults(DriveSensitiveState):
    """Manager-side fault switches for injection campaigns.

    * ``freeze_w`` — W Stage Timeout: the manager never presents write
      data (paper Fig. 9, "no valid data received from the master").
    * ``deaf_b`` / ``deaf_r`` — the manager stops accepting responses
      (exercises the ``BVLD_BRDY`` / response-readiness phases).

    Campaigns flip these switches mid-simulation, between cycles; the
    :class:`DriveSensitiveState` base notifies the owning manager.
    """

    freeze_w: bool = False
    deaf_b: bool = False
    deaf_r: bool = False

    def clear(self) -> None:
        self.freeze_w = False
        self.deaf_b = False
        self.deaf_r = False


@dataclasses.dataclass
class _Outstanding:
    spec: TransactionSpec
    issue_cycle: int
    addr_cycle: int
    first_data_cycle: Optional[int] = None
    last_data_cycle: Optional[int] = None
    read_data: Optional[List[int]] = None
    worst_resp: Resp = Resp.OKAY


class Manager(Component):
    """AXI4 manager that plays transaction specs and scores responses.

    Parameters
    ----------
    bus:
        The interface whose request channels this manager sources.
    max_outstanding:
        Optional self-imposed cap on in-flight transactions (both
        directions combined); the manager stalls issue when reached.
    """

    demand_driven = True
    demand_update = True
    #: Purely reactive: every countdown (issue delay, response
    #: scoring) is relative to the submitting stimulus, so behaviour
    #: is invariant under any time shift of that stimulus.
    phase_period = 1

    def __init__(
        self,
        name: str,
        bus: AxiInterface,
        max_outstanding: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        self.bus = bus
        self.max_outstanding = max_outstanding

        self._aw_queue: Deque[TransactionSpec] = deque()
        self._ar_queue: Deque[TransactionSpec] = deque()
        self._aw_delay = 0
        self._ar_delay = 0

        self._w_pending: Deque[_Outstanding] = deque()
        self._w_active: Optional[Tuple[_Outstanding, List[int], int]] = None
        self._w_gap = 0

        self._outstanding: Dict[Tuple[AxiDir, int], Deque[_Outstanding]] = {}
        self._inflight = 0
        self._b_wait = 0
        self._r_wait = 0
        self._cycle = 0
        # Stamp of the last accounted update: issue delays, the W inter-
        # beat gap and the response-readiness polls all advance by
        # `elapsed = now - _stamp`, so slept spans reconstruct exactly
        # (always-on operation has elapsed == 1).
        self._stamp = 0

        self.completed: List[CompletedTransaction] = []
        self.surprises: List[str] = []
        self.faults = ManagerFaults()
        self.faults._owner = self

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Apply the ticks a slept span accrued, before mutating state.

        Software entry points (``submit``) arm fresh countdowns; the
        pending ``elapsed`` of a quiescent stretch must be charged to
        the *old* state first — the span was frozen, so today's wire
        levels are the span's conditions — or the next update would
        bill the whole stretch against the new countdown.
        """
        sim = self._sim
        if sim is None:
            return
        now = sim.cycle  # stamp through which updates have conceptually run
        elapsed = now - self._stamp
        if elapsed <= 0:
            return
        self._stamp = now
        if self._aw_delay > 0:
            self._aw_delay = max(0, self._aw_delay - elapsed)
        if self._ar_delay > 0:
            self._ar_delay = max(0, self._ar_delay - elapsed)
        if self._w_gap > 0:
            self._w_gap = max(0, self._w_gap - elapsed)
        bus = self.bus
        if bus.b.valid._value and self._b_wait > 0:
            self._b_wait += elapsed
        if bus.r.valid._value and self._r_wait > 0:
            self._r_wait += elapsed

    def submit(self, spec: TransactionSpec) -> None:
        """Queue one transaction for issue."""
        self._sync()
        if spec.direction == AxiDir.WRITE:
            if len(self._aw_queue) == 0:
                self._aw_delay = spec.issue_delay
            self._aw_queue.append(spec)
        else:
            if len(self._ar_queue) == 0:
                self._ar_delay = spec.issue_delay
            self._ar_queue.append(spec)
        self.schedule_drive()
        self.schedule_update()

    def submit_all(self, specs: Iterable[TransactionSpec]) -> None:
        for spec in specs:
            self.submit(spec)

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight."""
        return (
            not self._aw_queue
            and not self._ar_queue
            and not self._w_pending
            and self._w_active is None
            and self._inflight == 0
        )

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def failures(self) -> List[CompletedTransaction]:
        return [txn for txn in self.completed if txn.failed]

    # ------------------------------------------------------------------
    # Component protocol
    # ------------------------------------------------------------------
    def wires(self):
        yield from self.bus.wires()

    def inputs(self):
        # drive() reads only the response channels (via _resp_delay);
        # everything else it consults is registered state, reported
        # through schedule_drive().
        bus = self.bus
        return (bus.b.valid, bus.b.payload, bus.r.valid, bus.r.payload)

    def outputs(self):
        bus = self.bus
        return (
            bus.aw.valid, bus.aw.payload,
            bus.ar.valid, bus.ar.payload,
            bus.w.valid, bus.w.payload,
            bus.b.ready, bus.r.ready,
        )

    def update_inputs(self):
        # Registered state moves only on fired handshakes (valid & ready
        # — the valids the manager sources are covered by its quiescence
        # predicate, so the ready edges must wake it) and on inbound
        # responses; submit() and the fault block wake it through
        # schedule_update().
        bus = self.bus
        return (
            bus.aw.ready, bus.ar.ready, bus.w.ready,
            bus.b.valid, bus.b.payload, bus.r.valid, bus.r.payload,
        )

    def quiescent(self):
        # Sleep whenever no handshake can fire next edge and every
        # running countdown's next *visible* transition is declared as
        # a timed wake:
        #
        # * a request (or W beat) already held on a stalled channel
        #   sleeps until the far ready rises — the deaf-subordinate
        #   regime the paper's stall campaigns hang on;
        # * an issue delay / W gap still counting wakes the cycle it
        #   reaches zero (the update that raises valid next settle);
        # * a response-readiness poll ramping toward its spec's
        #   resp_ready_delay wakes exactly at the crossing, so the
        #   ready wire still rises on schedule; a deaf poll ticks
        #   silently (elapsed accounting reconstructs it).
        #
        # Transactions parked behind a full outstanding window or a
        # freeze fault are safe to sleep on: unparking needs a response
        # fire or a fault flip, and both find us awake.
        bus, faults = self.bus, self.faults
        now = self._stamp
        wake = None
        # AW / AR issue paths (we source the valids).
        if self._aw_queue and self._issue_allowed():
            if self._aw_delay == 0:
                if not bus.aw.valid._value or bus.aw.ready._value:
                    return False  # valid rising, or fire imminent
            else:
                wake = now + self._aw_delay
        if self._ar_queue and self._issue_allowed():
            if self._ar_delay == 0:
                if not bus.ar.valid._value or bus.ar.ready._value:
                    return False
            elif wake is None or now + self._ar_delay < wake:
                wake = now + self._ar_delay
        # W data path.
        if self._w_active is not None and not faults.freeze_w:
            if self._w_gap == 0:
                if not bus.w.valid._value or bus.w.ready._value:
                    return False
            elif wake is None or now + self._w_gap < wake:
                wake = now + self._w_gap
        # B / R response readiness polls (the subordinate sources the
        # valids; our ready follows `wait >= resp_ready_delay`).
        if bus.b.valid._value and not faults.deaf_b:
            delay = self._resp_delay(bus.b, AxiDir.WRITE)
            if self._b_wait >= delay:
                return False  # ready (about to be) up: fire imminent
            crossing = now + (delay - self._b_wait)
            if wake is None or crossing < wake:
                wake = crossing
        if bus.r.valid._value and not faults.deaf_r:
            delay = self._resp_delay(bus.r, AxiDir.READ)
            if self._r_wait >= delay:
                return False
            crossing = now + (delay - self._r_wait)
            if wake is None or crossing < wake:
                wake = crossing
        if wake is not None:
            if wake <= now:
                return False
            if self._sim is not None:
                self.wake_at(self._sim.cycle + (wake - now))
        return True

    def snapshot_state(self):
        # _cycle and the elapsed-ticked counters (issue delays, W gap,
        # response polls) are clock-derived and deliberately excluded;
        # their visible transitions always happen in awake updates.
        return (
            len(self._aw_queue),
            len(self._ar_queue),
            len(self._w_pending),
            self._w_active is None,
            self._w_active[2] if self._w_active is not None else -1,
            self._inflight,
            len(self.completed),
            len(self.surprises),
        )

    def _issue_allowed(self) -> bool:
        return (
            self.max_outstanding is None
            or self._inflight < self.max_outstanding
        )

    def drive(self) -> None:
        bus = self.bus
        # AW
        if self._aw_queue and self._aw_delay == 0 and self._issue_allowed():
            spec = self._aw_queue[0]
            bus.aw.drive(
                AwBeat(
                    id=spec.txn_id,
                    addr=spec.addr,
                    len=spec.len,
                    size=spec.size,
                    burst=spec.burst,
                    qos=spec.qos,
                )
            )
        else:
            bus.aw.idle()
        # AR
        if self._ar_queue and self._ar_delay == 0 and self._issue_allowed():
            spec = self._ar_queue[0]
            bus.ar.drive(
                ArBeat(
                    id=spec.txn_id,
                    addr=spec.addr,
                    len=spec.len,
                    size=spec.size,
                    burst=spec.burst,
                    qos=spec.qos,
                )
            )
        else:
            bus.ar.idle()
        # W
        if self._w_active is not None and self._w_gap == 0 and not self.faults.freeze_w:
            record, beats, index = self._w_active
            data, strb = beats[index]
            bus.w.drive(
                WBeat(
                    data=data,
                    strb=strb,
                    last=index == record.spec.beats - 1,
                )
            )
        else:
            bus.w.idle()
        # Response readiness
        bus.b.ready.value = not self.faults.deaf_b and (
            self._b_wait >= self._resp_delay(bus.b, AxiDir.WRITE)
        )
        bus.r.ready.value = not self.faults.deaf_r and (
            self._r_wait >= self._resp_delay(bus.r, AxiDir.READ)
        )

    def _resp_delay(self, channel, direction: AxiDir) -> int:
        # Slot reads are safe here: the manager's sensitivity to the
        # response channels is declared statically in inputs().
        beat = channel.payload._value
        if not channel.valid._value or beat is None:
            return 0
        queue = self._outstanding.get((direction, beat.id))
        if not queue:
            return 0
        return queue[0].spec.resp_ready_delay

    def update(self) -> None:
        # Clock-edge code: wire reads go straight to the slots (no
        # drive-phase tracing needed), mirroring Channel.fired().
        bus = self.bus
        aw, ar, w, b, r = bus.aw, bus.ar, bus.w, bus.b, bus.r
        # Scoreboard timestamps come from the global clock so quiescent
        # (skipped) spans cannot skew them; standalone use falls back to
        # self-counting.
        sim = self._sim
        self._cycle = sim.cycle + 1 if sim is not None else self._cycle + 1
        now = self._cycle
        elapsed = now - self._stamp
        self._stamp = now
        changed = False
        # Issue delays and the W gap tick even while parked (behind a
        # full window or a freeze fault); only reaching zero on a live
        # path raises a valid next settle, and that crossing always
        # lands in an awake update (per-cycle, or as the timed wake a
        # slept span declared).
        if self._aw_delay > 0:
            self._aw_delay = max(0, self._aw_delay - elapsed)
            if self._aw_delay == 0 and self._aw_queue and self._issue_allowed():
                changed = True
        if self._ar_delay > 0:
            self._ar_delay = max(0, self._ar_delay - elapsed)
            if self._ar_delay == 0 and self._ar_queue and self._issue_allowed():
                changed = True
        if self._w_gap > 0:
            self._w_gap = max(0, self._w_gap - elapsed)
            if self._w_gap == 0 and self._w_active is not None and not self.faults.freeze_w:
                changed = True

        if aw.valid._value and aw.ready._value:
            self._on_addr_fired(self._aw_queue, AxiDir.WRITE)
            changed = True
        if ar.valid._value and ar.ready._value:
            self._on_addr_fired(self._ar_queue, AxiDir.READ)
            changed = True

        was_active = self._w_active
        self._activate_w_if_needed()
        if self._w_active is not was_active:
            changed = True
        if w.valid._value and w.ready._value:
            self._on_w_fired()
            changed = True

        # The response-wait counters feed drive() only through the
        # "wait >= resp_ready_delay" comparisons; only a threshold
        # crossing on a non-deaf channel moves a readiness output.
        old_b_wait, old_r_wait = self._b_wait, self._r_wait
        if b.valid._value:
            self._b_wait = old_b_wait + elapsed if old_b_wait > 0 else 1
        else:
            self._b_wait = 0
        if r.valid._value:
            self._r_wait = old_r_wait + elapsed if old_r_wait > 0 else 1
        else:
            self._r_wait = 0
        if b.valid._value and b.ready._value:
            self._b_wait = 0
            self._on_b_fired(b.payload._value)
            changed = True
        elif self._b_wait != old_b_wait and not self.faults.deaf_b:
            delay = self._resp_delay(b, AxiDir.WRITE)
            if (old_b_wait >= delay) != (self._b_wait >= delay):
                changed = True
        if r.valid._value and r.ready._value:
            self._r_wait = 0
            self._on_r_fired(r.payload._value)
            changed = True
        elif self._r_wait != old_r_wait and not self.faults.deaf_r:
            delay = self._resp_delay(r, AxiDir.READ)
            if (old_r_wait >= delay) != (self._r_wait >= delay):
                changed = True
        if changed:
            self.schedule_drive()

    def _on_addr_fired(self, queue: Deque[TransactionSpec], direction: AxiDir) -> None:
        spec = queue.popleft()
        record = _Outstanding(
            spec=spec, issue_cycle=self._cycle - 1, addr_cycle=self._cycle
        )
        if direction == AxiDir.READ:
            record.read_data = []
        self._outstanding.setdefault((direction, spec.txn_id), deque()).append(record)
        self._inflight += 1
        if direction == AxiDir.WRITE:
            self._w_pending.append(record)
            if queue:
                self._aw_delay = queue[0].issue_delay
        else:
            if queue:
                self._ar_delay = queue[0].issue_delay

    def _activate_w_if_needed(self) -> None:
        if self._w_active is None and self._w_pending:
            record = self._w_pending.popleft()
            self._w_active = (record, record.spec.wire_write_beats(), 0)
            self._w_gap = 0

    def _on_w_fired(self) -> None:
        if self._w_active is None:
            return
        record, data, index = self._w_active
        if record.first_data_cycle is None:
            record.first_data_cycle = self._cycle
        if index == record.spec.beats - 1:
            record.last_data_cycle = self._cycle
            self._w_active = None
            self._activate_w_if_needed()
        else:
            self._w_active = (record, data, index + 1)
            self._w_gap = record.spec.w_gap

    def _pop_outstanding(
        self, direction: AxiDir, txn_id: int
    ) -> Optional[_Outstanding]:
        queue = self._outstanding.get((direction, txn_id))
        if not queue:
            return None
        record = queue.popleft()
        if not queue:
            del self._outstanding[(direction, txn_id)]
        return record

    def _on_b_fired(self, beat: BBeat) -> None:
        record = self._pop_outstanding(AxiDir.WRITE, beat.id)
        if record is None:
            self.surprises.append(
                f"cycle {self._cycle}: B response for unknown write ID {beat.id}"
            )
            return
        self._inflight -= 1
        self.completed.append(
            CompletedTransaction(
                direction=AxiDir.WRITE,
                txn_id=beat.id,
                addr=record.spec.addr,
                beats=record.spec.beats,
                issue_cycle=record.issue_cycle,
                addr_cycle=record.addr_cycle,
                first_data_cycle=record.first_data_cycle,
                last_data_cycle=record.last_data_cycle,
                resp_cycle=self._cycle,
                resp=beat.resp,
            )
        )

    def _on_r_fired(self, beat: RBeat) -> None:
        queue = self._outstanding.get((AxiDir.READ, beat.id))
        if not queue:
            self.surprises.append(
                f"cycle {self._cycle}: R beat for unknown read ID {beat.id}"
            )
            return
        record = queue[0]
        if record.first_data_cycle is None:
            record.first_data_cycle = self._cycle
        assert record.read_data is not None
        spec = record.spec
        width = bytes_per_beat(spec.size)
        if width < spec.bus_bytes:
            # Narrow beat: the data sits on the addressed byte lanes —
            # extract the logical value so the scoreboard matches what
            # write_data() produced.  (Clamp guards spurious extras.)
            index = min(len(record.read_data), spec.beats - 1)
            lane = spec.lane(index)
            value = (beat.data >> (8 * lane)) & ((1 << (8 * width)) - 1)
        else:
            value = beat.data
        record.read_data.append(value)
        if beat.resp.is_error or beat.resp > record.worst_resp:
            record.worst_resp = max(record.worst_resp, beat.resp)
        if beat.last:
            record.last_data_cycle = self._cycle
            self._pop_outstanding(AxiDir.READ, beat.id)
            self._inflight -= 1
            self.completed.append(
                CompletedTransaction(
                    direction=AxiDir.READ,
                    txn_id=beat.id,
                    addr=record.spec.addr,
                    beats=record.spec.beats,
                    issue_cycle=record.issue_cycle,
                    addr_cycle=record.addr_cycle,
                    first_data_cycle=record.first_data_cycle,
                    last_data_cycle=record.last_data_cycle,
                    resp_cycle=self._cycle,
                    resp=record.worst_resp,
                    data=record.read_data,
                )
            )

    def reset(self) -> None:
        self._aw_queue.clear()
        self._ar_queue.clear()
        self._aw_delay = 0
        self._ar_delay = 0
        self._w_pending.clear()
        self._w_active = None
        self._w_gap = 0
        self._outstanding.clear()
        self._inflight = 0
        self._b_wait = 0
        self._r_wait = 0
        self._cycle = 0
        self._stamp = 0
        self.completed.clear()
        self.surprises.clear()
        self.faults.clear()
        self.cancel_wake()
        self.schedule_drive()
        self.schedule_update()
