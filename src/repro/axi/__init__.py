"""AXI4 protocol substrate: types, channels, managers, subordinates."""

from .addrspace import AddressSpace, Region
from .channels import ArBeat, AwBeat, BBeat, RBeat, WBeat, remap_id
from .id_remap import IdRemapTable
from .interface import AxiInterface
from .manager import CompletedTransaction, Manager, ManagerFaults
from .memory import SparseMemory
from .subordinate import Subordinate, SubordinateFaults
from .traffic import (
    RandomTraffic,
    TransactionSpec,
    chained_bursts,
    dma_stream,
    ethernet_frame_spec,
    read_spec,
    write_spec,
)
from .types import AxiDir, BurstType, Resp

__all__ = [
    "AddressSpace",
    "ArBeat",
    "AwBeat",
    "AxiDir",
    "AxiInterface",
    "BBeat",
    "BurstType",
    "CompletedTransaction",
    "IdRemapTable",
    "Manager",
    "ManagerFaults",
    "RBeat",
    "RandomTraffic",
    "Region",
    "Resp",
    "SparseMemory",
    "Subordinate",
    "SubordinateFaults",
    "TransactionSpec",
    "WBeat",
    "chained_bursts",
    "dma_stream",
    "ethernet_frame_spec",
    "read_spec",
    "remap_id",
    "write_spec",
]
