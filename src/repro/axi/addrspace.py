"""Memory-map modelling: named regions and a decodable address space.

Mirrors the ``Region``/``AddressSpace`` idea of the cocotbext-axi
exemplar: an :class:`AddressSpace` is an ordered set of non-overlapping
:class:`Region` windows, each naming one subordinate (or one window of a
multi-level interconnect).  Traffic generators draw targets from the
map — weighted by region — instead of a flat ``addr_space`` integer, so
campaigns can exercise many-manager × many-subordinate topologies with
realistic locality.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class Region:
    """One window of the memory map.

    Parameters
    ----------
    name:
        Stable identifier (e.g. the subordinate it decodes to).
    base / size:
        Window geometry in bytes; ``size`` must be positive.
    weight:
        Relative draw weight for traffic generators (0 = never a
        random target, e.g. a read-only ROM window on a write sweep).
    """

    name: str
    base: int
    size: int
    weight: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} has size {self.size}")
        if self.base < 0:
            raise ValueError(f"region {self.name!r} has base {self.base}")
        if self.weight < 0:
            raise ValueError(f"region {self.name!r} has weight {self.weight}")

    @property
    def end(self) -> int:
        """One past the last byte of the window."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def to_range(self) -> Tuple[int, int]:
        """(base, end) half-open interval."""
        return (self.base, self.end)

    def to_address_range(self):
        """Crossbar route-table entry for this window."""
        from .crossbar import AddressRange

        return AddressRange(self.base, self.size)


class AddressSpace:
    """Ordered, non-overlapping collection of :class:`Region` windows."""

    def __init__(self, regions: Optional[List[Region]] = None) -> None:
        self._regions: List[Region] = []
        self._by_name: Dict[str, Region] = {}
        for region in regions or []:
            self.add(region)

    def add(self, region: Region) -> Region:
        """Register a window, rejecting overlaps and duplicate names."""
        if region.name in self._by_name:
            raise ValueError(f"duplicate region name {region.name!r}")
        for other in self._regions:
            if region.base < other.end and other.base < region.end:
                raise ValueError(
                    f"region {region.name!r} [{region.base:#x}, "
                    f"{region.end:#x}) overlaps {other.name!r} "
                    f"[{other.base:#x}, {other.end:#x})"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self._by_name[region.name] = region
        return region

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __getitem__(self, name: str) -> Region:
        return self._by_name[name]

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    def region_for(self, addr: int) -> Optional[Region]:
        """The window containing *addr*, or None (a DECERR address)."""
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def decode(self, addr: int) -> Optional[str]:
        """Name of the window containing *addr*, or None."""
        region = self.region_for(addr)
        return region.name if region is not None else None

    def ranges(self) -> List[Tuple[int, int]]:
        """(base, end) pairs in map order."""
        return [region.to_range() for region in self._regions]

    def route_table(self) -> List:
        """Crossbar route-table entries, in map order."""
        return [region.to_address_range() for region in self._regions]

    def weighted_regions(self) -> List[Region]:
        """Regions eligible as random-traffic targets (weight > 0)."""
        return [region for region in self._regions if region.weight > 0]
